package prism

import (
	"fmt"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// DeployerID is the well-known component ID of the deployer.
const DeployerID = "prism.deployer"

// DeployerComponent is the ExtensibleComponent with the Deployer
// implementation of IAdmin (DSN'04 §4.2): an Admin that additionally
// interfaces with DeSi — it gathers monitoring reports from every
// AdminComponent, distributes redeployment commands, and mediates
// interactions between hosts that are not directly connected.
//
// The deployer host also runs a full AdminComponent for its own local
// architecture; DeployerComponent handles the system-wide duties.
type DeployerComponent struct {
	BaseComponent
	arch   *Architecture
	cfg    AdminConfig
	sender *controlSender

	mu      sync.Mutex
	reports map[model.HostID]MonitoringReport
	// reportWait is signalled whenever a report arrives.
	reportWait chan struct{}
	// epochs tracks outstanding redeployment waves.
	epochs    map[int]*epochState
	nextEpoch int
	// detector, when attached, feeds heartbeats into liveness tracking
	// and lets a participant's death abort in-flight waves.
	detector *FailureDetector
	// store, when attached, durably checkpoints every two-phase
	// transition so a restarted deployer resumes or cleanly aborts
	// in-flight waves instead of replanning (see durable.go).
	store *DeployerStore
	// restoredIncs holds a checkpointed incarnation map recovered before
	// any detector was attached; AttachDetector primes it in.
	restoredIncs map[model.HostID]uint64
	// leadership, when attached, runs the agent-quorum lease protocol:
	// this deployer drives waves only while holding the lease, stamps its
	// fencing term on every control frame, and streams checkpoint records
	// to standby peers (see leader.go). Nil is the legacy solo mode.
	leadership *Leadership
	// goal is the per-agent desired-manifest table (goalstate.go). With a
	// store attached its mutations are checkpointed and replicated; it is
	// the source of truth the level-triggered resync path converges
	// agents to.
	goal *goalTable
	// health scores per-peer liveness quality from gray-failure signals
	// (unanswered report requests, resend pressure, observable send
	// failures, heartbeat jitter). Built lazily so its gauges land in
	// the registry wired by SetObservability.
	health *HealthScorer

	// stop aborts in-flight waves on Close so shutdown never deadlocks on
	// doneCh waiters.
	stop     chan struct{}
	stopOnce sync.Once
}

type epochState struct {
	pendingHosts map[model.HostID]bool
	doneCh       chan struct{}
	relayed      int
	received     int
	// coordinator is the wave's original coordinator identity; empty
	// means this deployer (the normal case). A promoted standby resuming
	// an inherited wave keeps the dead leader's identity here so
	// participant admins find their (coordinator, epoch)-keyed state.
	coordinator model.HostID
	// participants are every host the wave touches (sources and
	// destinations) — the audience of the commit/abort broadcast.
	participants map[model.HostID]bool
	// ackPending tracks outstanding outcome acknowledgements during phase
	// two; ackCh is signalled as they arrive.
	ackPending map[model.HostID]bool
	ackCh      chan struct{}
	// abortCh is closed when a participant dies mid-wave: the death is an
	// abort vote, not something to retry forever. deadAborted guards the
	// close and names the casualty.
	abortCh     chan struct{}
	deadAborted bool
	deadHost    model.HostID
	// gens are the participants' goal generations published with a
	// committed outcome (set between the decision checkpoint and the
	// outcome broadcast).
	gens map[model.HostID]uint64
}

// NewDeployerComponent builds a deployer for the master architecture.
func NewDeployerComponent(arch *Architecture, cfg AdminConfig) *DeployerComponent {
	registerPayloadsOnce.Do(registerControlPayloads)
	cfg = cfg.withDefaults()
	d := &DeployerComponent{
		BaseComponent: NewBaseComponent(DeployerID),
		arch:          arch,
		cfg:           cfg,
		sender:        newControlSender(arch, cfg, DeployerID),
		reports:       make(map[model.HostID]MonitoringReport),
		reportWait:    make(chan struct{}, 1),
		epochs:        make(map[int]*epochState),
		nextEpoch:     1,
		goal:          newGoalTable(),
		stop:          make(chan struct{}),
	}
	// A deposed or closed deployer's in-flight control retries die
	// promptly instead of burning the full backoff schedule.
	d.sender.setCancel(d.sendCancelled)
	return d
}

// sendCancelled tells the control sender's retry loop to give up on a
// frame whose purpose has lapsed: the deployer is closing, the frame
// asserts a leadership this deployer no longer holds, or (for phase-one
// commands) the epoch was already aborted by a participant's death.
func (d *DeployerComponent) sendCancelled(e Event) bool {
	select {
	case <-d.stop:
		return true
	default:
	}
	switch e.Name {
	case EvReconfig:
		if d.deposed() {
			return true
		}
		cmd, ok := e.Payload.(ReconfigCommand)
		if !ok {
			return false
		}
		d.mu.Lock()
		st := d.epochs[cmd.Epoch]
		dead := st == nil || st.deadAborted
		d.mu.Unlock()
		return dead
	case EvOutcome:
		return d.deposed()
	}
	return false
}

// Close aborts every in-flight wave and report collection. A wave that
// was mid-flight returns as rolled back; shutdown never blocks on doneCh
// waiters (the World.Close ordering fix).
func (d *DeployerComponent) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// AttachDetector wires a failure detector into the deployer: incoming
// heartbeats feed it, and HostDead transitions abort any wave the dead
// host participates in.
func (d *DeployerComponent) AttachDetector(fd *FailureDetector) {
	d.mu.Lock()
	d.detector = fd
	incs := d.restoredIncs
	d.restoredIncs = nil
	d.mu.Unlock()
	for h, inc := range incs {
		fd.PrimeIncarnation(h, inc)
	}
	fd.Subscribe(func(tr Transition) {
		d.arch.Obs().Counter(obs.Name("prism_detector_transitions_total",
			"host", string(d.arch.Host()), "to", tr.To.String())).Inc()
		if tr.To == HostDead {
			d.NoteHostDead(tr.Host)
			// A dead host's health history must not shade its rejoin: a
			// restarted incarnation starts with a clean score.
			d.healthScorer().Forget(tr.Host)
		}
	})
}

// Detector returns the attached failure detector (nil when none).
func (d *DeployerComponent) Detector() *FailureDetector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detector
}

// healthScorer returns the per-peer gray-failure scorer, built on first
// use so its gauges land in whatever registry SetObservability installed
// after construction.
func (d *DeployerComponent) healthScorer() *HealthScorer {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.health == nil {
		d.health = NewHealthScorer(HealthConfig{Host: d.arch.Host(), Obs: d.arch.Obs()})
	}
	return d.health
}

// Health exposes the per-peer gray-failure scorer.
func (d *DeployerComponent) Health() *HealthScorer {
	return d.healthScorer()
}

// EvaluateHealth applies the scorer's hysteresis band and folds every
// flip into the failure detector's HostDegraded overlay, returning the
// resulting liveness transitions. Callers run it on their monitoring
// cadence (the centralized loop calls it each Cycle).
func (d *DeployerComponent) EvaluateHealth() []Transition {
	flips := d.healthScorer().Evaluate()
	if len(flips) == 0 {
		return nil
	}
	d.mu.Lock()
	fd := d.detector
	d.mu.Unlock()
	if fd == nil {
		return nil
	}
	var out []Transition
	for _, f := range flips {
		out = append(out, fd.MarkDegraded(f.Peer, f.Degraded, d.cfg.Clock())...)
	}
	return out
}

// DegradedHosts lists hosts the detector currently holds in the
// HostDegraded overlay (nil when no detector is attached).
func (d *DeployerComponent) DegradedHosts() []model.HostID {
	d.mu.Lock()
	fd := d.detector
	d.mu.Unlock()
	if fd == nil {
		return nil
	}
	return fd.DegradedHosts()
}

// hostDead reports whether the attached detector currently declares the
// host dead.
func (d *DeployerComponent) hostDead(h model.HostID) bool {
	d.mu.Lock()
	fd := d.detector
	d.mu.Unlock()
	return fd != nil && fd.State(h) == HostDead
}

// NoteHostDead records a participant's death: every in-flight wave the
// host touches is aborted (its death is an abort vote), and its pending
// outcome acknowledgements are waived so phase two never spins on a
// corpse.
func (d *DeployerComponent) NoteHostDead(h model.HostID) {
	d.mu.Lock()
	for _, st := range d.epochs {
		if !st.participants[h] {
			continue
		}
		if !st.deadAborted && st.abortCh != nil {
			st.deadAborted = true
			st.deadHost = h
			close(st.abortCh)
		}
		if st.ackPending != nil && st.ackPending[h] {
			delete(st.ackPending, h)
			select {
			case st.ackCh <- struct{}{}:
			default:
			}
		}
	}
	d.mu.Unlock()
}

// InstallDeployer creates a deployer, adds it to the architecture, and
// welds it to the bus.
func InstallDeployer(arch *Architecture, cfg AdminConfig) (*DeployerComponent, error) {
	dep := NewDeployerComponent(arch, cfg)
	if err := arch.AddComponent(dep); err != nil {
		return nil, err
	}
	if err := arch.Weld(DeployerID, cfg.Bus); err != nil {
		return nil, err
	}
	return dep, nil
}

// Handle implements Component.
func (d *DeployerComponent) Handle(e Event) {
	if e.kind() != KindControl {
		return
	}
	switch e.Name {
	case EvReport:
		rep, ok := e.Payload.(MonitoringReport)
		if !ok {
			return
		}
		d.mu.Lock()
		d.reports[rep.Host] = rep
		d.mu.Unlock()
		select {
		case d.reportWait <- struct{}{}:
		default:
		}
	case EvFetch:
		// Mediated fetch: forward to the component's source host.
		req, ok := e.Payload.(FetchRequest)
		if !ok || !req.Mediated {
			return
		}
		src := req.Source
		if src == "" {
			// Legacy requests without a source: locate the component
			// from the latest monitoring reports.
			src = d.findHostOf(req.Comp, e.SrcHost)
		}
		if src == "" {
			return
		}
		_ = d.sendControl(src, Event{Name: EvFetch, Target: AdminID, Payload: req, SizeKB: 0.5})
	case EvTransfer:
		// Mediated transfer: forward toward its final destination. A
		// transfer destined for the deployer's own host is handed to the
		// local admin, which owns reconstitution.
		tp, ok := e.Payload.(TransferPayload)
		if !ok || tp.FinalDst == "" {
			return
		}
		if tp.FinalDst == d.arch.Host() {
			_ = d.sendControl(d.arch.Host(), Event{
				Name: EvTransfer, Target: AdminID, Payload: tp, SizeKB: tp.SizeKB,
			})
			return
		}
		_ = d.sendControl(tp.FinalDst, Event{
			Name: EvTransfer, Target: AdminID, Payload: tp, SizeKB: tp.SizeKB,
		})
	case EvDone:
		rep, ok := e.Payload.(DoneReport)
		if !ok {
			return
		}
		d.mu.Lock()
		if st, exists := d.epochs[rep.Epoch]; exists && st.pendingHosts[rep.Host] {
			delete(st.pendingHosts, rep.Host)
			st.received += rep.Received
			st.relayed += rep.Relayed
			if len(st.pendingHosts) == 0 {
				close(st.doneCh)
			}
		}
		d.mu.Unlock()
	case EvHeartbeat:
		hb, ok := e.Payload.(Heartbeat)
		if !ok {
			return
		}
		d.mu.Lock()
		fd := d.detector
		d.mu.Unlock()
		if fd != nil {
			fd.SetManifest(hb.Host, hb.Components)
			fd.Observe(hb.Host, hb.Incarnation)
		}
		// Inter-arrival jitter is a gray-failure signal the binary
		// alive/dead detector is blind to.
		d.healthScorer().RecordHeartbeat(hb.Host, d.cfg.Clock())
	case EvOutcomeAck:
		ack, ok := e.Payload.(OutcomeAck)
		if !ok {
			return
		}
		d.mu.Lock()
		if st, exists := d.epochs[ack.Epoch]; exists && st.ackPending != nil && st.ackPending[ack.Host] {
			delete(st.ackPending, ack.Host)
			select {
			case st.ackCh <- struct{}{}:
			default:
			}
		}
		d.mu.Unlock()
	case EvGoalAnnounce:
		ga, ok := e.Payload.(GoalAnnounce)
		if !ok {
			return
		}
		d.handleGoalAnnounce(ga)
	case EvGoalAck:
		ack, ok := e.Payload.(GoalAck)
		if !ok {
			return
		}
		d.handleGoalAck(ack)
	case EvLeaseGrant:
		g, ok := e.Payload.(LeaseGrant)
		if !ok {
			return
		}
		if le := d.Leadership(); le != nil {
			le.onGrant(g)
		}
	case EvReplicate:
		b, ok := e.Payload.(ReplBatch)
		if !ok {
			return
		}
		if le := d.Leadership(); le != nil {
			le.onReplicate(b)
		}
	case EvReplicateAck:
		a, ok := e.Payload.(ReplAck)
		if !ok {
			return
		}
		if le := d.Leadership(); le != nil {
			le.onReplicateAck(a)
		}
	}
}

// findHostOf locates a component using the latest monitoring reports,
// excluding the requesting host.
func (d *DeployerComponent) findHostOf(comp string, exclude model.HostID) model.HostID {
	d.mu.Lock()
	defer d.mu.Unlock()
	for host, rep := range d.reports {
		if host == exclude {
			continue
		}
		for _, c := range rep.Components {
			if c == comp {
				return host
			}
		}
	}
	return ""
}

// sendControl mirrors AdminComponent.sendControl for the deployer.
// Observable failures (a retry chain that burned its whole budget, or a
// breaker fail-fast) feed the health scorer; successes deliberately do
// not — a gray link can swallow frames after a clean local send, so
// "send returned nil" is not evidence of peer health. Positive evidence
// comes from end-to-end outcomes (reports arriving, heartbeats).
func (d *DeployerComponent) sendControl(to model.HostID, e Event) error {
	err := d.sender.send(to, e)
	if err != nil && to != d.arch.Host() {
		d.healthScorer().RecordSend(to, false)
	}
	return err
}

// RequestReports asks every listed host's admin for a monitoring report
// and waits until all have arrived or the timeout expires. It returns the
// reports received so far keyed by host.
func (d *DeployerComponent) RequestReports(hosts []model.HostID, timeout time.Duration) (map[model.HostID]MonitoringReport, error) {
	d.mu.Lock()
	d.reports = make(map[model.HostID]MonitoringReport, len(hosts))
	d.mu.Unlock()

	for _, h := range hosts {
		if err := d.sendControl(h, Event{Name: EvReportRequest, Target: AdminID, SizeKB: 0.2}); err != nil {
			return d.snapshotReports(), err
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if len(d.snapshotReports()) >= len(hosts) {
			d.recordReportOutcomes(hosts)
			return d.snapshotReports(), nil
		}
		select {
		case <-d.reportWait:
		case <-d.stop:
			got := d.snapshotReports()
			return got, fmt.Errorf("deployer: closed with %d of %d reports", len(got), len(hosts))
		case <-deadline.C:
			d.recordReportOutcomes(hosts)
			got := d.snapshotReports()
			return got, fmt.Errorf("deployer: %d of %d reports after %v", len(got), len(hosts), timeout)
		}
	}
}

// recordReportOutcomes feeds the health scorer one end-to-end outcome
// per polled host: an answered report request is the strongest positive
// evidence the deployer gets (the full round trip worked), and an
// unanswered one is the canonical gray-failure signal — the host may
// still be heartbeating while silently dropping our requests or its
// replies. Not recorded on the shutdown path, where silence proves
// nothing.
func (d *DeployerComponent) recordReportOutcomes(hosts []model.HostID) {
	got := d.snapshotReports()
	hs := d.healthScorer()
	self := d.arch.Host()
	for _, h := range hosts {
		if h == self {
			continue
		}
		_, ok := got[h]
		hs.RecordSend(h, ok)
	}
}

func (d *DeployerComponent) snapshotReports() map[model.HostID]MonitoringReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[model.HostID]MonitoringReport, len(d.reports))
	for h, r := range d.reports {
		out[h] = r
	}
	return out
}

// EnactResult summarizes a completed redeployment wave.
type EnactResult struct {
	Epoch int
	Moved int
	// Received sums the destination admins' reconstitution counts; a
	// fully successful wave has Received == Moved.
	Received   int
	Relayed    int
	Incomplete []model.HostID // hosts that never reported done (timeout)
	// Committed reports whether phase two committed the wave; false means
	// it was rolled back (or the rollback broadcast was at least
	// attempted).
	Committed bool
	// Degraded flags waves whose done reports do not account for every
	// move, or that left hosts incomplete — partial outcomes worth
	// surfacing even when Enact returns no error.
	Degraded bool
}

// Enact distributes a redeployment wave: moves maps each migrating
// component to its destination host; current describes where every
// component lives now.
//
// The wave runs as a two-phase migration. Phase one: each destination is
// told its arrivals (EvReconfig, re-dispatched to unresponsive hosts
// every EnactResendInterval unless retries are disabled), fetches them,
// and reports done; sources only *prepare* departures. Phase two: once
// every destination reported done — or the deadline expired — the
// outcome (commit or abort) is broadcast to every participating host and
// re-sent until acknowledged, so a failed transfer never strands a
// component: aborted sources reattach their prepared instances and
// aborted destinations evict uncommitted arrivals.
func (d *DeployerComponent) Enact(moves map[string]model.HostID, current map[string]model.HostID, timeout time.Duration) (EnactResult, error) {
	if d.deposed() {
		// With leadership attached, only the lease holder drives waves; a
		// standby (or deposed leader) refuses rather than burn an epoch
		// number the quorum will fence anyway.
		return EnactResult{}, ErrNotLeader
	}
	term := d.term()
	d.mu.Lock()
	epoch := d.nextEpoch
	d.nextEpoch++
	d.mu.Unlock()
	res := EnactResult{Epoch: epoch}

	// Group arrivals per destination host.
	arrivals := make(map[model.HostID]map[string]model.HostID)
	for comp, dst := range moves {
		src, ok := current[comp]
		if !ok {
			return res, fmt.Errorf("enact: unknown current host for component %s", comp)
		}
		if src == dst {
			continue
		}
		if arrivals[dst] == nil {
			arrivals[dst] = make(map[string]model.HostID)
		}
		arrivals[dst][comp] = src
		res.Moved++
	}
	if res.Moved == 0 {
		res.Committed = true
		return res, nil
	}

	// Wave duration reads the injected clock (AdminConfig.Clock), not
	// time.Now directly: under traced drills this was the one
	// nondeterministic metric in otherwise byte-identical runs.
	waveStart := d.cfg.Clock()
	wave := d.arch.Tracer().Start("wave")
	wave.SetAttr("epoch", epoch).SetAttr("moves", res.Moved)
	prep := wave.Child("prepare")

	st := &epochState{
		pendingHosts: make(map[model.HostID]bool, len(arrivals)),
		doneCh:       make(chan struct{}),
		participants: make(map[model.HostID]bool),
		abortCh:      make(chan struct{}),
	}
	cmds := make(map[model.HostID]Event, len(arrivals))
	dsts := make([]model.HostID, 0, len(arrivals))
	for dst, arr := range arrivals {
		st.pendingHosts[dst] = true
		st.participants[dst] = true
		for _, src := range arr {
			st.participants[src] = true
		}
		cmds[dst] = Event{
			Name: EvReconfig, Target: AdminID, SizeKB: 1,
			Payload: ReconfigCommand{
				Epoch: epoch, Arrivals: arr, Coordinator: d.arch.Host(), Term: term,
				Gen: d.pendingGen(dst),
			},
		}
		dsts = append(dsts, dst)
	}
	sortHostIDs(dsts)
	d.mu.Lock()
	d.epochs[epoch] = st
	parts := make([]model.HostID, 0, len(st.participants))
	for p := range st.participants {
		parts = append(parts, p)
	}
	d.mu.Unlock()
	// Epoch-open checkpoint: the wave's identity is durable before the
	// first command goes out, so a crash from here on restarts into an
	// epoch the recovery path knows how to abort or resume.
	if err := d.ckptOpened(epoch, moves, parts); err != nil {
		prep.SetAttr("outcome", "checkpoint_failed")
		prep.End()
		wave.SetAttr("outcome", "abort")
		wave.End()
		d.mu.Lock()
		delete(d.epochs, epoch)
		d.mu.Unlock()
		d.waveMetrics(false, res.Moved, waveStart)
		res.Degraded = true
		return res, fmt.Errorf("enact epoch %d: open checkpoint failed (wave not started): %w", epoch, err)
	}
	// A wave that already includes a known-dead participant aborts up
	// front instead of retrying into a corpse until the deadline.
	for _, p := range parts {
		if d.hostDead(p) {
			d.NoteHostDead(p)
		}
	}

	retry := !d.cfg.Retry.Disabled
	var dispatchErr error
	for _, dst := range dsts {
		if err := d.sendControl(dst, cmds[dst]); err != nil {
			dispatchErr = err
			if !retry {
				break
			}
			// With retries enabled the host stays pending; the resend
			// loop below keeps trying within the deadline.
		}
	}
	if dispatchErr != nil && !retry {
		// Without retries the wave cannot complete. Tear the epoch state
		// down (no leaked doneCh waiters) and name every host that will
		// not finish — including ones already dispatched — then attempt a
		// single-shot rollback so reachable participants clean up.
		prep.SetAttr("outcome", "dispatch_failed")
		prep.End()
		outSp := wave.Child("outcome").SetAttr("decision", "rollback")
		// Durable rule: even this single-shot rollback is persisted before
		// any participant hears it; if the checkpoint fails, the restart
		// path aborts the (still undecided) epoch instead.
		if err := d.ckptDecision(epoch, false); err == nil {
			d.broadcastOutcome(epoch, st, false)
		}
		outSp.End()
		wave.SetAttr("outcome", "abort")
		wave.End()
		d.waveMetrics(false, res.Moved, waveStart)
		d.mu.Lock()
		for h := range st.pendingHosts {
			res.Incomplete = append(res.Incomplete, h)
		}
		delete(d.epochs, epoch)
		d.mu.Unlock()
		sortHostIDs(res.Incomplete)
		res.Degraded = true
		return res, fmt.Errorf("enact epoch %d: dispatch failed: %w", epoch, dispatchErr)
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	completed := false
	closed := false
	fenced := false
	if retry {
		resend := time.NewTicker(d.cfg.EnactResendInterval)
		defer resend.Stop()
	wait:
		for {
			select {
			case <-st.doneCh:
				completed = true
				break wait
			case <-st.abortCh:
				break wait
			case <-d.stop:
				closed = true
				break wait
			case <-deadline.C:
				break wait
			case <-resend.C:
				if d.deposed() {
					// The quorum moved past our term mid-wave: every agent
					// fences our frames, so no done report will ever come.
					// Abort the wave now instead of waiting out the deadline.
					fenced = true
					break wait
				}
				// Re-issue the command to every host still pending: the
				// receiving admin dedups by epoch and re-reports done if
				// its earlier report was lost.
				d.mu.Lock()
				pend := make([]model.HostID, 0, len(st.pendingHosts))
				for h := range st.pendingHosts {
					pend = append(pend, h)
				}
				d.mu.Unlock()
				sortHostIDs(pend)
				for _, h := range pend {
					// A dead destination never reports done; retrying into the
					// corpse only serializes the control pump behind its send
					// backoff (NoteHostDead is already aborting the wave).
					if d.hostDead(h) {
						continue
					}
					// Re-dispatch means the earlier command or its done
					// report was lost — retry pressure is health evidence.
					d.healthScorer().RecordRetry(h)
					_ = d.sendControl(h, cmds[h])
				}
			}
		}
	} else {
		select {
		case <-st.doneCh:
			completed = true
		case <-st.abortCh:
		case <-d.stop:
			closed = true
		case <-deadline.C:
		}
	}

	d.mu.Lock()
	deadBy := st.deadHost
	wasDeadAbort := st.deadAborted
	d.mu.Unlock()
	switch {
	case completed:
		prep.SetAttr("outcome", "done")
	case closed:
		prep.SetAttr("outcome", "closed")
	case wasDeadAbort:
		prep.SetAttr("outcome", "dead_abort").SetAttr("dead", deadBy)
	case fenced:
		prep.SetAttr("outcome", "fenced")
	default:
		prep.SetAttr("outcome", "timeout")
	}
	prep.End()
	decision := "rollback"
	if completed {
		decision = "commit"
	}
	// Decision checkpoint (durable rule): the outcome is persisted before
	// any participant hears it, so a restarted deployer can only ever
	// re-announce the same decision. A checkpoint failure IS a crash at
	// this transition — no outcome goes out, the error defers the epoch
	// to the restart path, which aborts it (still undecided in the log).
	if !closed {
		if err := d.ckptDecision(epoch, completed); err != nil {
			outSp := wave.Child("outcome").SetAttr("decision", "deferred")
			outSp.End()
			wave.SetAttr("outcome", "crash")
			wave.End()
			d.mu.Lock()
			for h := range st.pendingHosts {
				res.Incomplete = append(res.Incomplete, h)
			}
			res.Relayed = st.relayed
			res.Received = st.received
			delete(d.epochs, epoch)
			d.mu.Unlock()
			sortHostIDs(res.Incomplete)
			res.Degraded = true
			d.waveMetrics(false, res.Moved, waveStart)
			return res, fmt.Errorf("enact epoch %d: decision checkpoint failed (%v); outcome deferred to restart", epoch, err)
		}
	}
	if completed && !closed {
		// A committed wave IS a goal-state transition: fold the moves into
		// the goal table (bumping the touched generations, checkpointed and
		// replicated when a store is attached) so the outcome broadcast can
		// publish the new generations. Idempotent — a crash between the
		// decision record and the goal records is healed by Resume
		// re-applying the same moves.
		gens := d.applyWaveToGoal(moves)
		d.mu.Lock()
		st.gens = gens
		d.mu.Unlock()
	}
	outSp := wave.Child("outcome").SetAttr("decision", decision)
	if closed {
		// Shutting down: best-effort single-shot rollback so reachable
		// participants clean up, but never wait on acks. Unpersisted by
		// design — the epoch stays undecided in the log, and the restart
		// path can only abort an undecided epoch, never contradict this.
		d.broadcastOutcomeOnce(epoch, st, false)
	} else {
		d.broadcastOutcome(epoch, st, completed)
		d.mu.Lock()
		drained := len(st.ackPending) == 0
		d.mu.Unlock()
		if drained {
			// Fully-acked checkpoint: nothing left for a restart to do.
			d.ckptClosed(epoch)
		}
	}
	outSp.End()

	d.mu.Lock()
	for h := range st.pendingHosts {
		res.Incomplete = append(res.Incomplete, h)
	}
	res.Relayed = st.relayed
	res.Received = st.received
	deadAborted, deadHost := st.deadAborted, st.deadHost
	delete(d.epochs, epoch)
	d.mu.Unlock()
	sortHostIDs(res.Incomplete)
	res.Committed = completed
	res.Degraded = res.Received != res.Moved || len(res.Incomplete) > 0
	if completed {
		wave.SetAttr("outcome", "commit")
	} else {
		wave.SetAttr("outcome", "abort")
	}
	wave.End()
	d.waveMetrics(completed, res.Moved, waveStart)
	if completed {
		// The coordinator is the authoritative relocation authority:
		// hop-exhausted relays detour here and are bounced back to their
		// origin with each component's committed location.
		if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
			for comp, dst := range moves {
				dc.RecordRelocation(comp, dst)
			}
		}
	}
	if !closed {
		// Soft-state snapshot (relocation table, dedup windows,
		// incarnations) rides behind every wave, best-effort.
		d.ckptSnapshot()
	}
	if !completed {
		switch {
		case closed:
			return res, fmt.Errorf("enact epoch %d: deployer closed mid-wave (wave rolled back)", epoch)
		case deadAborted:
			return res, fmt.Errorf("enact epoch %d: participant %s died mid-wave (wave rolled back)",
				epoch, deadHost)
		case fenced:
			return res, fmt.Errorf("enact epoch %d: leadership lost at term %d (wave fenced and rolled back)",
				epoch, term)
		default:
			return res, fmt.Errorf("enact epoch %d: %d hosts incomplete after %v (wave rolled back)",
				epoch, len(res.Incomplete), timeout)
		}
	}
	return res, nil
}

// waveMetrics records a finished wave's outcome, moved-component count,
// and wall-clock duration in the architecture's registry.
func (d *DeployerComponent) waveMetrics(committed bool, moved int, start time.Time) {
	reg := d.arch.Obs()
	host := string(d.arch.Host())
	outcome := "aborted"
	if committed {
		outcome = "committed"
	}
	reg.Counter(obs.Name("prism_wave_"+outcome+"_total", "host", host)).Inc()
	reg.Counter(obs.Name("prism_wave_moves_total", "host", host)).Add(float64(moved))
	reg.Histogram(obs.Name("prism_wave_duration_ms", "host", host), nil).
		Observe(float64(d.cfg.Clock().Sub(start).Milliseconds()))
}

// broadcastOutcome drives phase two: it tells every participant to commit
// or roll back and — unless retries are disabled — re-sends the outcome
// until each host acknowledges or the ack budget expires. It returns the
// number of participants that acknowledged.
func (d *DeployerComponent) broadcastOutcome(epoch int, st *epochState, commit bool) int {
	e := Event{
		Name: EvOutcome, Target: AdminID, SizeKB: 0.3,
		Payload: d.outcomePayload(epoch, st, commit),
	}
	parts := make([]model.HostID, 0, len(st.participants))
	d.mu.Lock()
	st.ackPending = make(map[model.HostID]bool, len(st.participants))
	st.ackCh = make(chan struct{}, 1)
	for h := range st.participants {
		parts = append(parts, h)
		st.ackPending[h] = true
	}
	d.mu.Unlock()
	sortHostIDs(parts)
	// Dead participants never ack: waive them so phase two converges on
	// the survivors alone.
	live := parts[:0:0]
	for _, h := range parts {
		if d.hostDead(h) {
			d.mu.Lock()
			delete(st.ackPending, h)
			d.mu.Unlock()
			continue
		}
		live = append(live, h)
	}
	parts = live
	for _, h := range parts {
		_ = d.sendControl(h, e)
	}
	if d.cfg.Retry.Disabled {
		d.mu.Lock()
		n := len(parts) - len(st.ackPending)
		d.mu.Unlock()
		return n
	}
	budget := time.NewTimer(d.cfg.OutcomeAckTimeout)
	defer budget.Stop()
	resend := time.NewTicker(d.cfg.EnactResendInterval)
	defer resend.Stop()
	for {
		d.mu.Lock()
		remaining := make([]model.HostID, 0, len(st.ackPending))
		for h := range st.ackPending {
			remaining = append(remaining, h)
		}
		d.mu.Unlock()
		if len(remaining) == 0 {
			return len(parts)
		}
		sortHostIDs(remaining)
		select {
		case <-st.ackCh:
		case <-resend.C:
			if d.deposed() {
				// Fenced: every remaining participant rejects our term, and
				// the new leader re-announces the same durable outcome.
				return len(parts) - len(remaining)
			}
			for _, h := range remaining {
				if d.hostDead(h) {
					d.mu.Lock()
					delete(st.ackPending, h)
					d.mu.Unlock()
					continue
				}
				// An unacknowledged outcome re-broadcast is retry
				// pressure toward a still-pending host.
				d.healthScorer().RecordRetry(h)
				_ = d.sendControl(h, e)
			}
		case <-d.stop:
			return len(parts) - len(remaining)
		case <-budget.C:
			return len(parts) - len(remaining)
		}
	}
}

// outcomePayload builds a wave outcome under the wave's original
// coordinator identity (participants key their state by it), stamped
// with the current fencing term and with this host as the ack/bounce
// target — after a failover the two differ.
func (d *DeployerComponent) outcomePayload(epoch int, st *epochState, commit bool) WaveOutcome {
	coord := st.coordinator
	if coord == "" {
		coord = d.arch.Host()
	}
	d.mu.Lock()
	gens := st.gens
	d.mu.Unlock()
	if !commit {
		gens = nil // aborted waves never advance a generation
	}
	return WaveOutcome{
		Epoch: epoch, Coordinator: coord, Commit: commit,
		Term: d.term(), ReplyTo: d.arch.Host(), Gens: gens,
	}
}

// broadcastOutcomeOnce sends the outcome to every participant exactly
// once without waiting for acknowledgements (shutdown path).
func (d *DeployerComponent) broadcastOutcomeOnce(epoch int, st *epochState, commit bool) {
	e := Event{
		Name: EvOutcome, Target: AdminID, SizeKB: 0.3,
		Payload: d.outcomePayload(epoch, st, commit),
	}
	parts := make([]model.HostID, 0, len(st.participants))
	d.mu.Lock()
	for h := range st.participants {
		parts = append(parts, h)
	}
	d.mu.Unlock()
	sortHostIDs(parts)
	for _, h := range parts {
		if d.hostDead(h) {
			continue
		}
		_ = d.sendControl(h, e)
	}
}
