package prism

import (
	"testing"
	"time"

	"dif/internal/model"
)

// healthWorld builds a transportless deployer with a detector on a fake
// clock — enough to drive the health-scoring surface directly.
func healthWorld(t *testing.T) (*DeployerComponent, *FailureDetector, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	arch := NewArchitecture("a", nil)
	dep := NewDeployerComponent(arch, AdminConfig{Deployer: "a", Clock: clk.Now})
	t.Cleanup(dep.Close)
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)
	dep.AttachDetector(fd)
	return dep, fd, clk
}

func TestDeployerEvaluateHealthDegradesAndRecovers(t *testing.T) {
	dep, fd, clk := healthWorld(t)
	fd.ObserveAt("b", 1, clk.Now())
	if st := fd.State("b"); st != HostUp {
		t.Fatalf("state = %v, want up", st)
	}

	hs := dep.Health()
	for i := 0; i < 20; i++ {
		hs.RecordSend("b", false)
	}
	trs := dep.EvaluateHealth()
	if len(trs) != 1 || trs[0].Host != "b" || trs[0].From != HostUp || trs[0].To != HostDegraded {
		t.Fatalf("transitions = %+v, want single b up→degraded", trs)
	}
	if st := fd.State("b"); st != HostDegraded {
		t.Fatalf("state = %v, want degraded", st)
	}
	if got := dep.DegradedHosts(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("DegradedHosts = %v, want [b]", got)
	}
	// Steady state: no new flips while still degraded.
	if trs := dep.EvaluateHealth(); len(trs) != 0 {
		t.Fatalf("steady-state transitions = %+v, want none", trs)
	}

	// Sustained clean outcomes climb back over the recovery threshold.
	for i := 0; i < 40; i++ {
		hs.RecordSend("b", true)
	}
	trs = dep.EvaluateHealth()
	if len(trs) != 1 || trs[0].From != HostDegraded || trs[0].To != HostUp {
		t.Fatalf("recovery transitions = %+v, want single degraded→up", trs)
	}
	if got := dep.DegradedHosts(); len(got) != 0 {
		t.Fatalf("DegradedHosts after recovery = %v, want empty", got)
	}
}

// TestDeployerReportOutcomesFeedHealth: an answered report poll is
// positive evidence, an unanswered one negative — and the deployer's own
// host is never scored.
func TestDeployerReportOutcomesFeedHealth(t *testing.T) {
	dep, _, _ := healthWorld(t)
	dep.mu.Lock()
	dep.reports = map[model.HostID]MonitoringReport{"b": {Host: "b"}}
	dep.mu.Unlock()

	for i := 0; i < 10; i++ {
		dep.recordReportOutcomes([]model.HostID{"a", "b", "c"})
	}
	hs := dep.Health()
	if s := hs.Score("b"); s != 1 {
		t.Fatalf("answered peer score = %v, want 1", s)
	}
	if s := hs.Score("c"); s > 0.5 {
		t.Fatalf("unanswered peer score = %v, want < 0.5", s)
	}
	for _, p := range hs.Snapshot() {
		if p.Peer == "a" {
			t.Fatal("deployer scored its own host")
		}
	}
}

// TestDeployerHeartbeatFeedsHealth: Handle's heartbeat path records
// inter-arrival times in the scorer.
func TestDeployerHeartbeatFeedsHealth(t *testing.T) {
	dep, fd, clk := healthWorld(t)
	for i := 0; i < 3; i++ {
		dep.Handle(Event{Name: EvHeartbeat, Kind: KindControl,
			Payload: Heartbeat{Host: "b", Incarnation: 1}})
		clk.Advance(time.Second)
	}
	if st := fd.State("b"); st != HostUp {
		t.Fatalf("state = %v, want up", st)
	}
	snap := dep.Health().Snapshot()
	if len(snap) != 1 || snap[0].Peer != "b" {
		t.Fatalf("snapshot = %+v, want tracked peer b", snap)
	}
}

// TestDeployerHealthForgottenOnDeath: a host that actually dies sheds
// its gray-failure history, so a rejoining incarnation starts clean.
func TestDeployerHealthForgottenOnDeath(t *testing.T) {
	dep, fd, clk := healthWorld(t)
	fd.ObserveAt("b", 1, clk.Now())
	hs := dep.Health()
	for i := 0; i < 20; i++ {
		hs.RecordSend("b", false)
	}
	if s := hs.Score("b"); s > 0.5 {
		t.Fatalf("score before death = %v, want low", s)
	}
	clk.Advance(10 * time.Second)
	fd.Evaluate()
	if st := fd.State("b"); st != HostDead {
		t.Fatalf("state after silence = %v, want dead", st)
	}
	if s := hs.Score("b"); s != 1 {
		t.Fatalf("score after death = %v, want forgotten (1)", s)
	}
}
