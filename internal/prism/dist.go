package prism

import (
	"fmt"
	"sort"
	"sync"

	"dif/internal/model"
	"dif/internal/netsim"
	"dif/internal/obs"
)

// Transport carries encoded events between hosts. Implementations:
// NetsimTransport (simulated fabric) and TCPTransport (real sockets).
type Transport interface {
	// Host returns the local host ID.
	Host() model.HostID
	// Peers returns the remote hosts this transport can currently reach,
	// sorted.
	Peers() []model.HostID
	// Send transmits an encoded frame. sizeKB is the modeled payload
	// size for network accounting (simulated transports charge it
	// against link bandwidth).
	Send(to model.HostID, data []byte, sizeKB float64) error
	// SetReceiver installs the inbound frame callback. Frames received
	// before a receiver is set are dropped.
	SetReceiver(recv func(from model.HostID, data []byte))
	// Close releases the transport's resources.
	Close() error
}

// NetsimTransport adapts a netsim.Fabric endpoint to the Transport
// interface.
type NetsimTransport struct {
	fabric *netsim.Fabric
	host   model.HostID

	mu   sync.RWMutex
	recv func(from model.HostID, data []byte)
}

var _ Transport = (*NetsimTransport)(nil)

// NewNetsimTransport binds the given (already registered) fabric host.
// It replaces the host's fabric handler.
func NewNetsimTransport(fabric *netsim.Fabric, host model.HostID) (*NetsimTransport, error) {
	t := &NetsimTransport{fabric: fabric, host: host}
	if err := fabric.SetHandler(host, t.onMessage); err != nil {
		return nil, fmt.Errorf("netsim transport: %w", err)
	}
	return t, nil
}

func (t *NetsimTransport) onMessage(m netsim.Message) {
	data, ok := m.Payload.([]byte)
	if !ok {
		return
	}
	t.mu.RLock()
	recv := t.recv
	t.mu.RUnlock()
	if recv != nil {
		recv(m.From, data)
	}
}

// Host implements Transport.
func (t *NetsimTransport) Host() model.HostID { return t.host }

// Peers implements Transport: the hosts linked to this one on the fabric.
func (t *NetsimTransport) Peers() []model.HostID {
	var out []model.HostID
	for _, h := range t.fabric.Hosts() {
		if h == t.host {
			continue
		}
		if _, ok := t.fabric.Link(t.host, h); ok {
			out = append(out, h)
		}
	}
	return out
}

// Send implements Transport.
func (t *NetsimTransport) Send(to model.HostID, data []byte, sizeKB float64) error {
	_, err := t.fabric.Send(t.host, to, sizeKB, data)
	return err
}

// SetReceiver implements Transport.
func (t *NetsimTransport) SetReceiver(recv func(from model.HostID, data []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// Close implements Transport. The fabric itself is shared and stays up.
func (t *NetsimTransport) Close() error {
	return t.fabric.SetHandler(t.host, nil)
}

// PeerStats tracks probe traffic toward one remote distribution
// connector, feeding the reliability estimate.
type PeerStats struct {
	Sent      int
	Delivered int
}

// Reliability returns the observed delivery ratio (1 when unprobed).
func (p PeerStats) Reliability() float64 {
	if p.Sent == 0 {
		return 1
	}
	return float64(p.Delivered) / float64(p.Sent)
}

// DistributionConnector extends a Connector across host boundaries
// (Prism-MW's DistributionConnector): events routed through it are also
// forwarded to remote peers over the transport, and events arriving from
// peers are routed into the local architecture. It additionally keeps
// per-peer probe statistics for NetworkReliabilityMonitor.
type DistributionConnector struct {
	*Connector
	host      model.HostID
	transport Transport

	mu    sync.Mutex
	stats map[model.HostID]*PeerStats
	saf   storeAndForward

	// delivery is the application-event delivery-guarantee layer
	// (sequence stamping, acks, retransmission, relocation bounces).
	delivery *appDelivery

	// poolSafe is true when the transport declared (via BufferRetainer)
	// that Send does not retain the data slice, so encode scratch
	// buffers can be recycled the moment Send returns.
	poolSafe bool

	// admission, when enabled, interposes the bounded class-prioritized
	// receive queue between frame decode and dispatch.
	admission *AdmissionController

	// obsReg remembers the registry from the last instrument call so a
	// later-enabled admission controller can attach its metrics.
	obsReg *obs.Registry

	// instr holds the transport-level metric handles; nil handles (before
	// instrument is called) no-op.
	instr struct {
		framesSent *obs.Counter
		bytesSent  *obs.Counter
		framesRecv *obs.Counter
		bytesRecv  *obs.Counter
		sendErrs   *obs.Counter
		encBin     *obs.Counter
		encGob     *obs.Counter
		decBin     *obs.Counter
		decGob     *obs.Counter
	}
}

// NewDistributionConnector wires a distribution connector to a transport.
// Prefer Architecture.AddDistributionConnector, which also registers it.
func NewDistributionConnector(name string, host model.HostID, scaffold *Scaffold, transport Transport) *DistributionConnector {
	dc := &DistributionConnector{
		Connector: NewConnector(name, scaffold),
		host:      host,
		transport: transport,
		stats:     make(map[model.HostID]*PeerStats),
	}
	if br, ok := transport.(BufferRetainer); ok {
		dc.poolSafe = !br.RetainsSendBuffers()
	}
	dc.Connector.host = host
	dc.Connector.forward = dc.forwardRemote
	dc.delivery = newAppDelivery(host)
	dc.Connector.stamp = dc.stamp
	dc.Connector.onDeliver = dc.onDeliver
	dc.Connector.onUndeliverable = dc.onUndeliverable
	transport.SetReceiver(dc.onFrame)
	return dc
}

// Transport returns the underlying transport.
func (dc *DistributionConnector) Transport() Transport { return dc.transport }

// instrument registers the connector's frame and byte counters, labelled
// by host, in reg (called via Architecture.SetObservability).
func (dc *DistributionConnector) instrument(reg *obs.Registry, host model.HostID) {
	h := string(host)
	dc.mu.Lock()
	dc.obsReg = reg
	adm := dc.admission
	dc.instr.framesSent = reg.Counter(obs.Name("prism_transport_frames_sent_total", "host", h))
	dc.instr.bytesSent = reg.Counter(obs.Name("prism_transport_bytes_sent_total", "host", h))
	dc.instr.framesRecv = reg.Counter(obs.Name("prism_transport_frames_recv_total", "host", h))
	dc.instr.bytesRecv = reg.Counter(obs.Name("prism_transport_bytes_recv_total", "host", h))
	dc.instr.sendErrs = reg.Counter(obs.Name("prism_transport_send_errors_total", "host", h))
	dc.instr.encBin = reg.Counter(obs.Name("prism_codec_encode_total", "codec", "binary", "host", h))
	dc.instr.encGob = reg.Counter(obs.Name("prism_codec_encode_total", "codec", "gob", "host", h))
	dc.instr.decBin = reg.Counter(obs.Name("prism_codec_decode_total", "codec", "binary", "host", h))
	dc.instr.decGob = reg.Counter(obs.Name("prism_codec_decode_total", "codec", "gob", "host", h))
	dc.mu.Unlock()
	if adm != nil {
		adm.instrument(reg, h)
	}
	dc.delivery.instrument(reg, h)
	dc.Connector.mu.Lock()
	dc.Connector.heldGauge = reg.Gauge(obs.Name("prism_app_held", "host", h))
	dc.Connector.spilledC = reg.Counter(obs.Name("prism_app_spilled_total", "host", h))
	dc.Connector.mu.Unlock()
}

// encodeFrame encodes an outbound event. Binary-encodable events on a
// non-retaining transport encode into a pooled scratch buffer — the
// caller must putEncBuf(pooled) after its last Send returns. pooled is
// nil when the frame owns its allocation.
func (dc *DistributionConnector) encodeFrame(e Event) (data []byte, pooled *[]byte, err error) {
	if BinaryEncodable(e) {
		dc.instr.encBin.Inc()
		if dc.poolSafe {
			pooled = getEncBuf()
			*pooled, err = AppendEvent(*pooled, e)
			if err != nil {
				putEncBuf(pooled)
				return nil, nil, err
			}
			return *pooled, pooled, nil
		}
		data, err = AppendEvent(make([]byte, 0, binarySizeHint(e)), e)
		return data, nil, err
	}
	dc.instr.encGob.Inc()
	data, err = encodeEventGob(e)
	return data, nil, err
}

// forwardRemote ships a locally originated event to its remote audience.
func (dc *DistributionConnector) forwardRemote(e Event) {
	e.SrcHost = dc.host
	data, pooled, err := dc.encodeFrame(e)
	if err != nil {
		return // unencodable payloads stay local
	}
	if pooled != nil {
		defer putEncBuf(pooled)
	}
	queueable := e.kind() == KindApplication
	if e.DstHost != "" {
		if e.DstHost != dc.host {
			dc.sendTracked(e.DstHost, data, e.EffectiveSizeKB(), queueable)
		}
		return
	}
	// A stamped event whose target location is known unicasts there; the
	// bounded retransmitter falls back to broadcast if the hint is stale.
	if e.Seq != 0 && e.Target != "" && e.kind() == KindApplication {
		if hint := dc.locationHint(e.Target); hint != "" && hint != dc.host {
			dc.sendTracked(hint, data, e.EffectiveSizeKB(), queueable)
			return
		}
	}
	for _, peer := range dc.transport.Peers() {
		dc.sendTracked(peer, data, e.EffectiveSizeKB(), queueable)
	}
}

// sendTracked transmits a frame, records the outcome in the peer's probe
// statistics, and (for queueable application traffic) stores
// undeliverable frames when store-and-forward is enabled. Control and
// ping traffic is never queued: probes are only meaningful live, and the
// control plane has its own retransmission.
func (dc *DistributionConnector) sendTracked(to model.HostID, data []byte, sizeKB float64, queueable bool) {
	err := dc.transport.Send(to, data, sizeKB)
	dc.mu.Lock()
	st, ok := dc.stats[to]
	if !ok {
		st = &PeerStats{}
		dc.stats[to] = st
	}
	st.Sent++
	if err == nil {
		st.Delivered++
	}
	dc.instr.framesSent.Inc()
	dc.instr.bytesSent.Add(float64(len(data)))
	if err != nil {
		dc.instr.sendErrs.Inc()
	}
	dc.mu.Unlock()
	if err != nil && queueable {
		dc.queuePending(to, data, sizeKB)
	}
}

// onFrame decodes an inbound remote frame and hands it to dispatch —
// directly, or through the admission controller when overload
// protection is enabled.
func (dc *DistributionConnector) onFrame(from model.HostID, data []byte) {
	dc.mu.Lock()
	dc.instr.framesRecv.Inc()
	dc.instr.bytesRecv.Add(float64(len(data)))
	adm := dc.admission
	dc.mu.Unlock()
	e, err := DecodeEvent(data)
	if err != nil {
		return
	}
	if data[0] == binTag {
		dc.instr.decBin.Inc()
	} else {
		dc.instr.decGob.Inc()
	}
	e.SrcHost = from
	if adm != nil {
		adm.Enqueue(e)
		return
	}
	dc.dispatch(e)
}

// EnableAdmission interposes a bounded, class-prioritized admission
// controller on the receive path (see admission.go) and returns it so
// the owner can drain (manual mode) or Close it. Metrics registered via
// instrument before this call are attached immediately; otherwise they
// attach at the next SetObservability.
func (dc *DistributionConnector) EnableAdmission(cfg AdmissionConfig) *AdmissionController {
	adm := newAdmissionController(cfg, dc.dispatch)
	dc.mu.Lock()
	dc.admission = adm
	reg := dc.obsReg
	dc.mu.Unlock()
	if reg != nil {
		adm.instrument(reg, string(dc.host))
	}
	return adm
}

// Admission returns the active admission controller (nil when disabled).
func (dc *DistributionConnector) Admission() *AdmissionController {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.admission
}

// dispatch consumes delivery-guarantee protocol frames and routes
// everything else into the local architecture.
func (dc *DistributionConnector) dispatch(e Event) {
	// Delivery-guarantee protocol frames are consumed here; they never
	// reach the local audience.
	if e.Kind == KindControl {
		switch e.Name {
		case EvAppAck:
			if a, ok := e.Payload.(AppAck); ok {
				dc.handleAppAck(a)
			}
			return
		case EvAppAckBatch:
			if b, ok := e.Payload.(AppAckBatch); ok {
				dc.handleAppAckBatch(b)
			}
			return
		case EvAppBounce:
			if b, ok := e.Payload.(AppBounce); ok {
				dc.handleAppBounce(b)
			}
			return
		}
	}
	dc.Connector.Route(e)
}

// PingN probes a peer with n reliability-measurement events (the paper's
// "common pinging technique") and returns the observed delivery ratio
// for just those probes.
func (dc *DistributionConnector) PingN(peer model.HostID, n int) float64 {
	before := dc.PeerStats(peer)
	e := Event{Name: "prism.ping", Kind: KindPing, SizeKB: 0.1, SrcHost: dc.host, DstHost: peer}
	data, err := EncodeEvent(e)
	if err != nil {
		return 0
	}
	for i := 0; i < n; i++ {
		dc.sendTracked(peer, data, e.SizeKB, false)
	}
	after := dc.PeerStats(peer)
	sent := after.Sent - before.Sent
	if sent == 0 {
		return 0
	}
	return float64(after.Delivered-before.Delivered) / float64(sent)
}

// PeerStats returns a snapshot of the probe statistics toward a peer.
func (dc *DistributionConnector) PeerStats(peer model.HostID) PeerStats {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if st, ok := dc.stats[peer]; ok {
		return *st
	}
	return PeerStats{}
}

// Reliabilities returns the observed delivery ratio per probed peer.
func (dc *DistributionConnector) Reliabilities() map[model.HostID]float64 {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	out := make(map[model.HostID]float64, len(dc.stats))
	for peer, st := range dc.stats {
		out[peer] = st.Reliability()
	}
	return out
}

// ResetPeerStats clears probe statistics (start of a monitoring window).
func (dc *DistributionConnector) ResetPeerStats() {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	dc.stats = make(map[model.HostID]*PeerStats)
}

// Peers returns the transport's reachable hosts, sorted.
func (dc *DistributionConnector) Peers() []model.HostID {
	peers := dc.transport.Peers()
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}
