package prism

import (
	"math"
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/netsim"
)

// world is a multi-host prism test fixture over netsim.
type world struct {
	fabric *netsim.Fabric
	archs  map[model.HostID]*Architecture
	buses  map[model.HostID]*DistributionConnector
}

// newWorld builds hosts with a full mesh at the given reliability, one
// architecture per host, and a "bus" distribution connector each.
func newWorld(t *testing.T, rel float64, hosts ...model.HostID) *world {
	t.Helper()
	w := &world{
		fabric: netsim.NewFabric(42),
		archs:  make(map[model.HostID]*Architecture),
		buses:  make(map[model.HostID]*DistributionConnector),
	}
	t.Cleanup(w.fabric.Close)
	for _, h := range hosts {
		if err := w.fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			if err := w.fabric.Connect(a, b, netsim.LinkState{Reliability: rel, BandwidthKB: 10_000}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, h := range hosts {
		arch := NewArchitecture(h, nil)
		tr, err := NewNetsimTransport(w.fabric, h)
		if err != nil {
			t.Fatal(err)
		}
		bus, err := arch.AddDistributionConnector("bus", tr)
		if err != nil {
			t.Fatal(err)
		}
		w.archs[h] = arch
		w.buses[h] = bus
	}
	return w
}

func (w *world) addEcho(t *testing.T, host model.HostID, id string) *echoComponent {
	t.Helper()
	c := newEcho(id)
	if err := w.archs[host].AddComponent(c); err != nil {
		t.Fatal(err)
	}
	if err := w.archs[host].Weld(id, "bus"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistributionConnectorCrossHost(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	a.Emit(Event{Name: "hello", Target: "b"})
	waitFor(t, func() bool { return b.count.Load() == 1 })
	evs := b.events()
	if evs[0].SrcHost != "h1" {
		t.Fatalf("SrcHost not stamped: %+v", evs[0])
	}
	// No echo back to the sender.
	if a.count.Load() != 0 {
		t.Fatal("sender received its own remote event")
	}
}

func TestDistributionConnectorBroadcast(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2", "h3")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	c := w.addEcho(t, "h3", "c")
	a.Emit(Event{Name: "ping-all"})
	waitFor(t, func() bool { return b.count.Load() == 1 && c.count.Load() == 1 })
	if a.count.Load() != 0 {
		t.Fatal("broadcast echoed to sender")
	}
}

func TestDistributionConnectorDstHostAddressing(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2", "h3")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	c := w.addEcho(t, "h3", "c")
	_ = a
	// Same component ID exists on h2 and h3 in spirit; address by host.
	w.archs["h1"].Component("a").(*echoComponent).
		Emit(Event{Name: "direct", Target: "b", DstHost: "h2"})
	waitFor(t, func() bool { return b.count.Load() == 1 })
	time.Sleep(20 * time.Millisecond)
	if c.count.Load() != 0 {
		t.Fatal("host-addressed event leaked to other hosts")
	}
}

func TestRemoteEventsNotReforwarded(t *testing.T) {
	// Three hosts, full mesh: h1 broadcasts; h2 must not re-forward the
	// event to h3 (which already got its copy from h1).
	w := newWorld(t, 1.0, "h1", "h2", "h3")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	c := w.addEcho(t, "h3", "c")
	_ = b
	a.Emit(Event{Name: "x"})
	waitFor(t, func() bool { return c.count.Load() >= 1 })
	time.Sleep(30 * time.Millisecond)
	if got := c.count.Load(); got != 1 {
		t.Fatalf("c received %d copies, want exactly 1", got)
	}
}

func TestPingReliabilityEstimate(t *testing.T) {
	w := newWorld(t, 0.6, "h1", "h2")
	bus := w.buses["h1"]
	ratio := bus.PingN("h2", 2000)
	if math.Abs(ratio-0.6) > 0.05 {
		t.Fatalf("ping ratio = %v, want ≈0.6", ratio)
	}
	rels := bus.Reliabilities()
	if r, ok := rels["h2"]; !ok || math.Abs(r-0.6) > 0.05 {
		t.Fatalf("Reliabilities = %v", rels)
	}
	st := bus.PeerStats("h2")
	if st.Sent != 2000 {
		t.Fatalf("sent = %d", st.Sent)
	}
	bus.ResetPeerStats()
	if st := bus.PeerStats("h2"); st.Sent != 0 {
		t.Fatal("stats not reset")
	}
}

func TestNetworkReliabilityMonitor(t *testing.T) {
	w := newWorld(t, 0.5, "h1", "h2", "h3")
	m := NewNetworkReliabilityMonitor(w.buses["h1"])
	m.ProbesPerMeasurement = 400
	samples := m.MeasureOnce()
	if len(samples) != 2 {
		t.Fatalf("probed %d peers, want 2", len(samples))
	}
	for _, s := range samples {
		if s.Probes != 400 {
			t.Fatalf("sample probes = %d", s.Probes)
		}
		if math.Abs(s.Reliability-0.5) > 0.08 {
			t.Fatalf("peer %s reliability %v, want ≈0.5", s.Peer, s.Reliability)
		}
	}
	if _, ok := m.Last("h2"); !ok {
		t.Fatal("Last(h2) missing")
	}
	if _, ok := m.Last("ghost"); ok {
		t.Fatal("Last(ghost) present")
	}
}

func TestPeerStatsReliability(t *testing.T) {
	if r := (PeerStats{}).Reliability(); r != 1 {
		t.Fatalf("unprobed reliability = %v, want 1", r)
	}
	if r := (PeerStats{Sent: 4, Delivered: 1}).Reliability(); r != 0.25 {
		t.Fatalf("reliability = %v, want 0.25", r)
	}
}

func TestNetsimTransportPeers(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2", "h3")
	peers := w.buses["h1"].Peers()
	if len(peers) != 2 || peers[0] != "h2" || peers[1] != "h3" {
		t.Fatalf("peers = %v", peers)
	}
	// Disconnect one link: peer set shrinks.
	w.fabric.Disconnect("h1", "h3")
	peers = w.buses["h1"].Peers()
	if len(peers) != 1 || peers[0] != "h2" {
		t.Fatalf("peers after disconnect = %v", peers)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}
