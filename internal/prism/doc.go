// Package prism implements the Prism-MW architectural middleware
// (DSN'04 §4.2, [11]): the implementation platform the framework's
// Monitor and Effector components hook into.
//
// A distributed application is a set of Architecture objects — one per
// host — each holding Components and Connectors (collectively Bricks).
// Components communicate exclusively by exchanging Events routed by
// Connectors; a Scaffold schedules and dispatches events on a thread
// pool. DistributionConnectors bridge architectures across host
// boundaries over a pluggable Transport (the netsim fabric in simulation,
// TCP/gob between real processes).
//
// Architectural self-awareness follows the paper's design: monitors
// (EvtFrequencyMonitor, NetworkReliabilityMonitor) attach to bricks via
// the Monitor interface; the meta-level AdminComponent accesses its local
// Architecture to monitor and reconfigure it, and the DeployerComponent
// (an Admin with deployment duties) coordinates system-wide redeployment:
// admins detach migrating components, serialize them, ship them as
// events, and the receiving admins reconstitute and reattach them.
package prism
