package prism

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"dif/internal/model"
	"dif/internal/store"
)

// Durable record kinds in the deployer's write-ahead checkpoint log.
// Exported so chaos drills can target a crash at a named two-phase
// transition.
const (
	// RecEpochOpen marks a wave admitted to phase one: epoch number,
	// moves, and participant set are durable before the first reconfig
	// command is dispatched.
	RecEpochOpen byte = 1
	// RecEpochPrepared marks every destination's done report in: the
	// wave may commit.
	RecEpochPrepared byte = 2
	// RecEpochDecided persists the commit/abort decision. The outcome is
	// never broadcast before this record is durable, so a restart can
	// only ever re-announce the same decision.
	RecEpochDecided byte = 3
	// RecEpochClosed marks the outcome fully acknowledged; the epoch
	// needs nothing from a restart.
	RecEpochClosed byte = 4
	// RecSnapshot is the last-wins snapshot of the relocation table,
	// dedup windows, and incarnation map.
	RecSnapshot byte = 5
	// RecGoalState is one host's goal-state entry (generation + desired
	// manifest), last-wins per host. Written on every goal transition, so
	// generations survive restarts and replicate to standbys alongside
	// the wave records.
	RecGoalState byte = 6
)

// compactAfter is how many closed epochs may accumulate in the log
// before it is rewritten down to live state.
const compactAfter = 64

type epochOpenRec struct {
	Epoch        int                     `json:"epoch"`
	Moves        map[string]model.HostID `json:"moves"`
	Participants []model.HostID          `json:"participants"`
	// Coordinator is the host whose deployer opened the wave. A standby
	// promoted mid-wave resumes under the ORIGINAL coordinator identity —
	// participant admins key their two-phase state by (coordinator,
	// epoch), and renaming the wave would strand it.
	Coordinator model.HostID `json:"coordinator,omitempty"`
}

type epochMarkRec struct {
	Epoch int `json:"epoch"`
}

type goalStateRec struct {
	Host     model.HostID    `json:"host"`
	Gen      uint64          `json:"gen"`
	Manifest []GoalComponent `json:"manifest,omitempty"`
}

type epochDecidedRec struct {
	Epoch  int  `json:"epoch"`
	Commit bool `json:"commit"`
}

type snapshotRec struct {
	// NextEpoch preserves epoch monotonicity across compactions that
	// drop every numbered record.
	NextEpoch    int                     `json:"nextEpoch,omitempty"`
	Reloc        map[string]model.HostID `json:"reloc,omitempty"`
	Dedup        []DedupSnapshot         `json:"dedup,omitempty"`
	Incarnations map[model.HostID]uint64 `json:"incarnations,omitempty"`
	// Term is the highest fencing term this deployer has seen; persisted
	// so a restarted deployer never campaigns below a term it already
	// acknowledged, and replicated so standbys inherit it.
	Term uint64 `json:"term,omitempty"`
}

// DurableWave is one epoch's reconstructed two-phase progress.
type DurableWave struct {
	Epoch        int
	Moves        map[string]model.HostID
	Participants []model.HostID
	Coordinator  model.HostID
	Prepared     bool
	Decided      bool
	Commit       bool
}

// DeployerStore is the deployer's durable checkpoint: a typed facade
// over the write-ahead log in internal/store, plus an in-memory mirror
// of the live state that replay rebuilds and compaction re-serializes.
type DeployerStore struct {
	mu   sync.Mutex
	log  *store.Log
	dead bool

	nextEpoch int
	waves     map[int]*DurableWave
	snap      snapshotRec
	closedN   int
	// goals mirrors the latest goal-state record per host (acked
	// generations are soft state: agents re-announce after any restart).
	goals map[model.HostID]goalStateRec

	// crashKind/onCrash are the kill -9 stand-in: after the next record
	// of crashKind lands durably, the store dies and onCrash runs.
	crashKind byte
	onCrash   func()

	// observeKind/onObserve are the non-fatal sibling of CrashAfter:
	// after the next record of observeKind lands (and has been offered
	// to replication), fn runs once — the store stays alive. Drills use
	// it to partition the network at a named checkpoint.
	observeKind byte
	onObserve   func()

	// replEnqueue/replFlush tap the append stream for leader→standby
	// replication. Enqueue runs under ds.mu (its ordering matches the
	// WAL exactly); flush runs after release, strictly before any armed
	// crash hook — a record that became durable here is offered to
	// standbys before the leader can die of it.
	replEnqueue func(kind byte, data []byte)
	replFlush   func()

	// replSeq is the standby-side ingest high-water mark: the sequence
	// number of the last replicated record applied this term.
	replSeq uint64
}

// OpenDeployerStore opens (or creates) the checkpoint log in dir,
// acquires its process lock, and replays it. A second live opener gets
// store.ErrLocked; corruption is a hard error.
func OpenDeployerStore(dir string) (*DeployerStore, error) {
	log, recs, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	ds := &DeployerStore{
		log: log, nextEpoch: 1,
		waves: make(map[int]*DurableWave),
		goals: make(map[model.HostID]goalStateRec),
	}
	for _, r := range recs {
		if err := ds.applyLocked(r); err != nil {
			log.Close()
			return nil, err
		}
	}
	return ds, nil
}

// applyLocked folds one record into the in-memory mirror. Decode is
// strict: a record that does not parse or references an unknown epoch
// mid-protocol is corruption.
func (ds *DeployerStore) applyLocked(r store.Record) error {
	bump := func(epoch int) {
		if epoch >= ds.nextEpoch {
			ds.nextEpoch = epoch + 1
		}
	}
	switch r.Kind {
	case RecEpochOpen:
		var rec epochOpenRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad epoch-open record: %w", err)
		}
		ds.waves[rec.Epoch] = &DurableWave{
			Epoch: rec.Epoch, Moves: rec.Moves, Participants: rec.Participants,
			Coordinator: rec.Coordinator,
		}
		bump(rec.Epoch)
	case RecEpochPrepared:
		var rec epochMarkRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad epoch-prepared record: %w", err)
		}
		if wv := ds.waves[rec.Epoch]; wv != nil {
			wv.Prepared = true
		}
		bump(rec.Epoch)
	case RecEpochDecided:
		var rec epochDecidedRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad epoch-decided record: %w", err)
		}
		if wv := ds.waves[rec.Epoch]; wv != nil {
			wv.Decided = true
			wv.Commit = rec.Commit
		}
		bump(rec.Epoch)
	case RecEpochClosed:
		var rec epochMarkRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad epoch-closed record: %w", err)
		}
		delete(ds.waves, rec.Epoch)
		ds.closedN++
		bump(rec.Epoch)
	case RecSnapshot:
		var rec snapshotRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad snapshot record: %w", err)
		}
		ds.snap = rec
		if rec.NextEpoch > ds.nextEpoch {
			ds.nextEpoch = rec.NextEpoch
		}
	case RecGoalState:
		var rec goalStateRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("deployer store: bad goal-state record: %w", err)
		}
		ds.goals[rec.Host] = rec
	default:
		return fmt.Errorf("deployer store: unknown record kind %d", r.Kind)
	}
	return nil
}

// append marshals and durably writes one record, keeps the mirror
// current, fires an armed crash hook, and compacts when enough closed
// epochs have piled up.
func (ds *DeployerStore) append(kind byte, v any) error {
	return ds.appendPolicy(kind, v, true)
}

// appendPolicy is append with the replication flush made optional.
// eager=false still enqueues the record into the replication log in WAL
// order, but leaves the network send to the next natural flush (a later
// append, a campaign win, or a replication tick). Goal-state records use
// this: they are derivable from the decided wave records they trail, so
// a standby that misses the eager send reconstructs them during Resume,
// and a burst of per-host checkpoints must not spawn a matching burst of
// retrying control sends.
func (ds *DeployerStore) appendPolicy(kind byte, v any, eager bool) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	ds.mu.Lock()
	if ds.dead {
		ds.mu.Unlock()
		return store.ErrClosed
	}
	if err := ds.log.Append(kind, data); err != nil {
		ds.mu.Unlock()
		return err
	}
	if err := ds.applyLocked(store.Record{Kind: kind, Data: data}); err != nil {
		ds.mu.Unlock()
		return err
	}
	if ds.replEnqueue != nil {
		ds.replEnqueue(kind, data)
	}
	var hook func()
	if ds.crashKind != 0 && kind == ds.crashKind {
		// The record IS durable — the crash happens strictly after the
		// checkpoint, which is the transition the drills target.
		ds.dead = true
		ds.crashKind = 0
		hook = ds.onCrash
		ds.onCrash = nil
		ds.log.MarkDead()
	}
	var observe func()
	if ds.observeKind != 0 && kind == ds.observeKind {
		observe = ds.onObserve
		ds.observeKind = 0
		ds.onObserve = nil
	}
	var flush func()
	if eager {
		flush = ds.replFlush
	}
	if hook == nil && ds.closedN >= compactAfter {
		_ = ds.compactLocked()
	}
	ds.mu.Unlock()
	// Replication strictly precedes the hooks: even when this append was
	// the arranged crash point, the now-durable record streams out first
	// — matching a real crash, where the fsync'd write survives.
	if flush != nil {
		flush()
	}
	if observe != nil {
		observe()
	}
	if hook != nil {
		hook()
	}
	return nil
}

// liveRecordsLocked serializes the mirror down to live state: one
// snapshot record (carrying the epoch high-water mark and fencing term)
// plus the record chain of every still-open wave. This is both the
// compaction rewrite and the replication iterator — the full prefix a
// new leadership session streams to its standbys. Caller holds ds.mu.
func (ds *DeployerStore) liveRecordsLocked() ([]store.Record, snapshotRec, error) {
	snap := ds.snap
	snap.NextEpoch = ds.nextEpoch
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, snap, err
	}
	recs := []store.Record{{Kind: RecSnapshot, Data: data}}
	ghosts := make([]model.HostID, 0, len(ds.goals))
	for h := range ds.goals {
		ghosts = append(ghosts, h)
	}
	sortHostIDs(ghosts)
	for _, h := range ghosts {
		g, err := json.Marshal(ds.goals[h])
		if err != nil {
			return nil, snap, err
		}
		recs = append(recs, store.Record{Kind: RecGoalState, Data: g})
	}
	epochs := make([]int, 0, len(ds.waves))
	for e := range ds.waves {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	for _, e := range epochs {
		wv := ds.waves[e]
		open, err := json.Marshal(epochOpenRec{
			Epoch: wv.Epoch, Moves: wv.Moves, Participants: wv.Participants,
			Coordinator: wv.Coordinator,
		})
		if err != nil {
			return nil, snap, err
		}
		recs = append(recs, store.Record{Kind: RecEpochOpen, Data: open})
		if wv.Prepared {
			mark, _ := json.Marshal(epochMarkRec{Epoch: wv.Epoch})
			recs = append(recs, store.Record{Kind: RecEpochPrepared, Data: mark})
		}
		if wv.Decided {
			dec, _ := json.Marshal(epochDecidedRec{Epoch: wv.Epoch, Commit: wv.Commit})
			recs = append(recs, store.Record{Kind: RecEpochDecided, Data: dec})
		}
	}
	return recs, snap, nil
}

// LiveRecords returns the store's live state as a record stream (nil on
// a serialization error — callers treat that as an empty base).
func (ds *DeployerStore) LiveRecords() []store.Record {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	recs, _, err := ds.liveRecordsLocked()
	if err != nil {
		return nil
	}
	return recs
}

// compactLocked rewrites the log down to live state. Caller holds ds.mu.
func (ds *DeployerStore) compactLocked() error {
	recs, snap, err := ds.liveRecordsLocked()
	if err != nil {
		return err
	}
	if err := ds.log.Compact(recs); err != nil {
		return err
	}
	ds.closedN = 0
	ds.snap = snap
	return nil
}

// Ingest applies one replicated batch to the standby's WAL and mirror,
// idempotently: a batch whose records are all already applied is a
// no-op (duplicate delivery), a batch beyond the high-water mark is
// ignored (out-of-order delivery; the leader retransmits the suffix),
// and a Reset batch replaces the log with exactly its records (the new
// leadership session's full live prefix). Returns the high-water mark
// after the call — the ack value.
func (ds *DeployerStore) Ingest(seq uint64, reset bool, recs []store.Record) (uint64, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.dead {
		return ds.replSeq, store.ErrClosed
	}
	last := seq + uint64(len(recs)) - 1
	if len(recs) == 0 || last <= ds.replSeq {
		return ds.replSeq, nil // fully covered: duplicate or stale redelivery
	}
	if reset && seq == 1 {
		if err := ds.log.Compact(recs); err != nil {
			return ds.replSeq, err
		}
		ds.nextEpoch = 1
		ds.waves = make(map[int]*DurableWave)
		ds.snap = snapshotRec{}
		ds.goals = make(map[model.HostID]goalStateRec)
		ds.closedN = 0
		for _, r := range recs {
			if err := ds.applyLocked(r); err != nil {
				return ds.replSeq, err
			}
		}
		ds.replSeq = last
		return ds.replSeq, nil
	}
	if seq > ds.replSeq+1 {
		return ds.replSeq, nil // gap: wait for the retransmitted suffix
	}
	fresh := recs[ds.replSeq-seq+1:]
	if err := ds.log.AppendBatch(fresh); err != nil {
		return ds.replSeq, err
	}
	for _, r := range fresh {
		if err := ds.applyLocked(r); err != nil {
			return ds.replSeq, err
		}
	}
	ds.replSeq = last
	return ds.replSeq, nil
}

// ResetReplProgress clears the ingest high-water mark. The leadership
// layer calls it when a higher term appears: the new leader's stream
// restarts its numbering from a Reset batch.
func (ds *DeployerStore) ResetReplProgress() {
	ds.mu.Lock()
	ds.replSeq = 0
	ds.mu.Unlock()
}

// ReplProgress returns the standby-side ingest high-water mark.
func (ds *DeployerStore) ReplProgress() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.replSeq
}

// SetReplicator taps the append stream for replication: enqueue runs
// under the store lock in WAL order, flush after release (and strictly
// before any armed crash hook). Pass nils to detach.
func (ds *DeployerStore) SetReplicator(enqueue func(kind byte, data []byte), flush func()) {
	ds.mu.Lock()
	ds.replEnqueue = enqueue
	ds.replFlush = flush
	ds.mu.Unlock()
}

// Term returns the persisted fencing term (zero before any election).
func (ds *DeployerStore) Term() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.snap.Term
}

// SaveTerm durably records a fencing term the deployer acknowledged.
func (ds *DeployerStore) SaveTerm(term uint64) error {
	ds.mu.Lock()
	snap := ds.snap
	snap.Term = term
	snap.NextEpoch = ds.nextEpoch
	ds.mu.Unlock()
	return ds.append(RecSnapshot, snap)
}

func (ds *DeployerStore) epochOpened(epoch int, moves map[string]model.HostID, participants []model.HostID, coordinator model.HostID) error {
	sorted := append([]model.HostID(nil), participants...)
	sortHostIDs(sorted)
	return ds.append(RecEpochOpen, epochOpenRec{
		Epoch: epoch, Moves: moves, Participants: sorted, Coordinator: coordinator,
	})
}

func (ds *DeployerStore) epochPrepared(epoch int) error {
	return ds.append(RecEpochPrepared, epochMarkRec{Epoch: epoch})
}

func (ds *DeployerStore) epochDecided(epoch int, commit bool) error {
	return ds.append(RecEpochDecided, epochDecidedRec{Epoch: epoch, Commit: commit})
}

func (ds *DeployerStore) epochClosed(epoch int) error {
	return ds.append(RecEpochClosed, epochMarkRec{Epoch: epoch})
}

// saveGoal durably records one host's goal-state entry (last-wins). The
// replication send is deferred to the next flush: goal records trail the
// wave records they are derived from, and Resume re-applies committed
// moves to the goal table, so a standby never depends on seeing them
// eagerly.
func (ds *DeployerStore) saveGoal(rec goalStateRec) error {
	return ds.appendPolicy(RecGoalState, rec, false)
}

// GoalStates returns the mirrored goal-state records keyed by host.
func (ds *DeployerStore) GoalStates() map[model.HostID]goalStateRec {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make(map[model.HostID]goalStateRec, len(ds.goals))
	for h, g := range ds.goals {
		out[h] = g
	}
	return out
}

// GoalGenerations returns the goal generation each host's mirrored
// record carries — what a deployer promoted from this store would serve.
// Drills use it to confirm the replication stream delivered the goal
// checkpoints before forcing a failover.
func (ds *DeployerStore) GoalGenerations() map[model.HostID]uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make(map[model.HostID]uint64, len(ds.goals))
	for h, g := range ds.goals {
		out[h] = g.Gen
	}
	return out
}

func (ds *DeployerStore) saveSnapshot(snap snapshotRec) error {
	ds.mu.Lock()
	snap.NextEpoch = ds.nextEpoch
	if snap.Term == 0 {
		// Soft-state snapshots never carry a term; keep the persisted one.
		snap.Term = ds.snap.Term
	}
	ds.mu.Unlock()
	return ds.append(RecSnapshot, snap)
}

// HasState reports whether the log held any records when opened — the
// restart-without-replan gate: a deployer with prior state resumes from
// it instead of re-deriving an initial distribution.
func (ds *DeployerStore) HasState() bool { return ds.log.Replayed() > 0 }

// NextEpoch returns the epoch high-water mark (first unused number).
func (ds *DeployerStore) NextEpoch() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.nextEpoch
}

// OpenWaves returns every epoch not yet closed, ascending.
func (ds *DeployerStore) OpenWaves() []DurableWave {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]DurableWave, 0, len(ds.waves))
	for _, wv := range ds.waves {
		out = append(out, *wv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

func (ds *DeployerStore) snapshot() snapshotRec {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.snap
}

// CrashAfter arms the kill -9 stand-in used by torture tests and chaos
// drills: immediately after the next record of the given kind lands
// durably, the store marks itself dead — every later write fails with
// store.ErrClosed — and fn runs (typically closing the deployer). The
// checkpoint itself survives; only everything after it is lost, exactly
// like a crash between the fsync and the next instruction.
func (ds *DeployerStore) CrashAfter(kind byte, fn func()) {
	ds.mu.Lock()
	ds.crashKind = kind
	ds.onCrash = fn
	ds.mu.Unlock()
}

// ObserveAppend arms a one-shot, NON-fatal hook: fn runs immediately
// after the next record of the given kind lands durably (and has been
// offered to replication), with the store still alive. Failover drills
// use it to partition the network at a named checkpoint while the
// doomed leader keeps running.
func (ds *DeployerStore) ObserveAppend(kind byte, fn func()) {
	ds.mu.Lock()
	ds.observeKind = kind
	ds.onObserve = fn
	ds.mu.Unlock()
}

// Close releases the log and its process lock.
func (ds *DeployerStore) Close() error {
	ds.mu.Lock()
	ds.dead = true
	log := ds.log
	ds.mu.Unlock()
	return log.Close()
}

// AttachStore binds a durable checkpoint store to the deployer and
// restores its soft state: the epoch high-water mark, the relocation
// table, the dedup windows (stricter-wins merge into the bus connector),
// and the incarnation map (primed into the detector now or when one is
// attached). In-flight waves are NOT resolved here — call Resume once
// the control plane is ready to carry the outcome broadcast.
func (d *DeployerComponent) AttachStore(ds *DeployerStore) error {
	d.mu.Lock()
	d.store = ds
	if ne := ds.NextEpoch(); ne > d.nextEpoch {
		d.nextEpoch = ne
	}
	fd := d.detector
	le := d.leadership
	d.mu.Unlock()
	if le != nil {
		// Leadership attached first: tap the store now and inherit its
		// persisted fencing term.
		ds.SetReplicator(le.enqueue, le.flush)
		le.observe(ds.Term(), "")
	}
	snap := ds.snapshot()
	if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
		for comp, host := range snap.Reloc {
			dc.RecordRelocation(comp, host)
		}
		dc.RestoreDedup(snap.Dedup)
	}
	if fd != nil {
		for h, inc := range snap.Incarnations {
			fd.PrimeIncarnation(h, inc)
		}
	} else if len(snap.Incarnations) > 0 {
		d.mu.Lock()
		d.restoredIncs = snap.Incarnations
		d.mu.Unlock()
	}
	// Goal-state merge: the log's entries win where they are at least as
	// new (the restart and promoted-standby cases); entries only the
	// in-memory table knows (seeded before the store was attached) are
	// pushed into the log now.
	push := d.mergeGoalFromStore(ds)
	for _, h := range push {
		d.ckptGoal(h)
	}
	return nil
}

// mergeGoalFromStore folds the store's goal-state records into the
// in-memory goal table (store wins where at least as new) and returns
// the hosts only the memory table knows — the caller checkpoints those.
// Resume calls this again before resolving waves: a standby keeps
// ingesting replicated goal records long after AttachStore ran, and a
// promoted leader must serve the stream's latest generations, not the
// attach-time snapshot.
func (d *DeployerComponent) mergeGoalFromStore(ds *DeployerStore) []model.HostID {
	stored := ds.GoalStates()
	var push []model.HostID
	d.mu.Lock()
	for h, rec := range stored {
		e := d.goal.entry(h)
		if rec.Gen >= e.Gen {
			e.Gen = rec.Gen
			e.Manifest = make(map[string]string, len(rec.Manifest))
			for _, gc := range rec.Manifest {
				e.Manifest[gc.ID] = gc.Type
			}
		}
	}
	for h, e := range d.goal.entries {
		if _, ok := stored[h]; !ok && e.Gen > 0 {
			push = append(push, h)
		}
	}
	d.mu.Unlock()
	sortHostIDs(push)
	return push
}

// ResumedWave reports how Resume resolved one in-flight epoch.
type ResumedWave struct {
	Epoch int
	// Committed is the outcome that was broadcast.
	Committed bool
	// Resumed is true when the decision was already durable before the
	// crash (the broadcast picked up where it stopped); false when the
	// epoch was undecided and therefore cleanly aborted.
	Resumed bool
}

// Resume resolves every in-flight epoch found in the attached store —
// the restart-without-replan path. A decided epoch re-broadcasts its
// persisted outcome (participant admins apply outcomes idempotently and
// always re-ack, so this is safe no matter how far the dead lifetime's
// broadcast got); an undecided epoch durably records an abort and
// broadcasts that. No epoch is ever re-planned or re-dispatched. Waves
// whose outcome is fully acknowledged are closed in the log; stragglers
// stay open for the next restart.
func (d *DeployerComponent) Resume() ([]ResumedWave, error) {
	d.mu.Lock()
	ds := d.store
	d.mu.Unlock()
	if ds == nil {
		return nil, nil
	}
	// Adopt whatever goal generations the replication stream delivered
	// since AttachStore: the promoted-standby path answers announces from
	// this table the moment Resume returns.
	d.mergeGoalFromStore(ds)
	var out []ResumedWave
	for _, wv := range ds.OpenWaves() {
		rw := ResumedWave{Epoch: wv.Epoch, Resumed: wv.Decided, Committed: wv.Decided && wv.Commit}
		if !wv.Decided {
			// The durable rule holds here too: the abort is persisted
			// before any participant hears it.
			if err := ds.epochDecided(wv.Epoch, false); err != nil {
				return out, fmt.Errorf("resume epoch %d: abort checkpoint: %w", wv.Epoch, err)
			}
		}
		st := &epochState{
			participants: make(map[model.HostID]bool, len(wv.Participants)),
			// Resume under the wave's ORIGINAL coordinator identity: the
			// participants keyed their two-phase state by it. A promoted
			// standby stamps itself as ReplyTo so acks and bounces reach
			// the live leader.
			coordinator: wv.Coordinator,
		}
		for _, h := range wv.Participants {
			st.participants[h] = true
		}
		d.mu.Lock()
		d.epochs[wv.Epoch] = st
		d.mu.Unlock()
		decision := "rollback"
		if rw.Committed {
			// Re-fold the committed moves into the goal table before the
			// broadcast. Idempotent: if the dead lifetime already wrote the
			// goal records, nothing bumps; if it crashed between the decision
			// record and the goal records, this heals the gap. The resumed
			// outcome then publishes the CURRENT generations (level
			// semantics — agents only ever move forward).
			gens := d.applyWaveToGoal(wv.Moves)
			d.mu.Lock()
			st.gens = gens
			d.mu.Unlock()
		}
		sp := d.arch.Tracer().Start("wave_resume")
		sp.SetAttr("epoch", wv.Epoch).SetAttr("decision", decision).SetAttr("resumed", rw.Resumed)
		d.broadcastOutcome(wv.Epoch, st, rw.Committed)
		sp.End()
		if rw.Committed {
			if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
				for comp, dst := range wv.Moves {
					dc.RecordRelocation(comp, dst)
				}
			}
		}
		d.mu.Lock()
		drained := len(st.ackPending) == 0
		delete(d.epochs, wv.Epoch)
		d.mu.Unlock()
		if drained {
			_ = ds.epochClosed(wv.Epoch)
		}
		out = append(out, rw)
	}
	d.ckptSnapshot()
	return out, nil
}

// RelocationView returns the coordinator's committed relocation table
// (component → host), used to rebuild the deployment view after a
// restart instead of replanning.
func (d *DeployerComponent) RelocationView() map[string]model.HostID {
	if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
		return dc.RelocationSnapshot()
	}
	return nil
}

// ckptOpened persists a wave's admission (no-op without a store).
func (d *DeployerComponent) ckptOpened(epoch int, moves map[string]model.HostID, participants []model.HostID) error {
	d.mu.Lock()
	ds := d.store
	d.mu.Unlock()
	if ds == nil {
		return nil
	}
	return ds.epochOpened(epoch, moves, participants, d.arch.Host())
}

// ckptDecision persists the all-prepared transition (commit waves only)
// and then the decision itself. Enact treats a failure here as a crash:
// the outcome must not be broadcast unless it is durable first.
func (d *DeployerComponent) ckptDecision(epoch int, commit bool) error {
	d.mu.Lock()
	ds := d.store
	d.mu.Unlock()
	if ds == nil {
		return nil
	}
	if commit {
		if err := ds.epochPrepared(epoch); err != nil {
			return err
		}
	}
	return ds.epochDecided(epoch, commit)
}

// ckptClosed marks an epoch's outcome fully acknowledged (best-effort:
// a failure only means a redundant re-broadcast after the next restart).
func (d *DeployerComponent) ckptClosed(epoch int) {
	d.mu.Lock()
	ds := d.store
	d.mu.Unlock()
	if ds != nil {
		_ = ds.epochClosed(epoch)
	}
}

// ckptGoal persists one host's goal-state entry (best-effort: a dead
// store must never fail a wave — Resume's idempotent re-apply heals the
// gap, and a memory-only deployer simply keeps the table soft).
func (d *DeployerComponent) ckptGoal(h model.HostID) {
	d.mu.Lock()
	ds := d.store
	var rec goalStateRec
	if ds != nil {
		e := d.goal.entry(h)
		rec = goalStateRec{Host: h, Gen: e.Gen}
		ids := e.sortedIDs()
		for _, id := range ids {
			rec.Manifest = append(rec.Manifest, GoalComponent{ID: id, Type: e.Manifest[id]})
		}
	}
	d.mu.Unlock()
	if ds != nil {
		_ = ds.saveGoal(rec)
	}
}

// ckptSnapshot persists the relocation table, dedup windows, and
// incarnation map (best-effort, last-wins).
func (d *DeployerComponent) ckptSnapshot() {
	d.mu.Lock()
	ds := d.store
	fd := d.detector
	d.mu.Unlock()
	if ds == nil {
		return
	}
	var snap snapshotRec
	if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
		snap.Reloc = dc.RelocationSnapshot()
		snap.Dedup = dc.SnapshotAllDedup()
	}
	if fd != nil {
		snap.Incarnations = fd.Incarnations()
	}
	_ = ds.saveSnapshot(snap)
}
