package prism

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// FaultTransport decorates any Transport (simulated or TCP) with seeded,
// configurable fault injection — silent frame drops, delivery delay,
// duplicate delivery, per-peer partitions, and directional gray faults —
// so the middleware's dependability claims are testable against the
// exact failure modes the paper's target environment exhibits (DSN'04
// §3.1: unreliable wireless links, hosts that become temporarily
// unreachable, and links that limp asymmetrically).
//
// Drops are silent: Send reports success and the frame evaporates, like
// wireless loss the sender cannot observe. Per-hop retry loops never see
// an error, so the end-to-end retransmission layers (fetch retries,
// reconfig re-dispatch, outcome re-broadcast) have to earn their keep.
// Partitions, by contrast, are observable: Send fails fast, like an
// unreachable peer, and inbound frames from the partitioned peer are
// discarded too. Link flaps behave like short observable partitions
// whose on/off schedule is a pure function of the flap seed.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand // outbound fault process
	rngIn       *rand.Rand // inbound fault process (decoupled from outbound)
	partitioned map[model.HostID]partitionState
	flaps       map[flapKey]*flapCursor
	clock       func() time.Time
	start       time.Time
	closed      bool

	// The fault counters live in an obs.Registry (cfg.Obs, or nil-safe
	// no-op handles when none was supplied).
	sent, dropped, duplicated, delayed, blocked, flapped *obs.Counter

	// wg tracks in-flight delayed deliveries so Close can drain them.
	wg sync.WaitGroup
}

// partitionState tracks an injected partition per direction, so gray
// scenarios can cut only one way (frames in, frames out, or both).
type partitionState struct {
	in, out bool
}

func (p partitionState) any() bool { return p.in || p.out }

// DirFault describes one direction's gray-fault process: partial loss,
// added delay, and a seeded link-flap schedule. The zero value injects
// nothing.
type DirFault struct {
	// DropRate silently discards frames travelling in this direction.
	DropRate float64
	// DelayRate holds frames back for Delay before delivering them
	// asynchronously (reordering them past later frames).
	DelayRate float64
	Delay     time.Duration
	// Flap overlays a reproducible on/off schedule: while the link is in
	// a down phase, outbound sends fail fast (observable, like a
	// partition) and inbound frames are discarded.
	Flap FlapConfig
}

// PeerFault overrides the transport-wide directional fault mix for one
// peer. An entry replaces both directions wholesale (it does not merge
// with the Inbound/Outbound defaults).
type PeerFault struct {
	In  DirFault
	Out DirFault
}

// FlapConfig describes a seeded link-flap schedule: alternating up/down
// phases whose lengths are a pure function of (Seed, phase index) — the
// schedule is byte-identical across runs with the same config. The
// schedule is enabled when both Up and Down are positive; phase i lasts
// between base/2 and base where base is Up for even i, Down for odd i.
type FlapConfig struct {
	Seed int64
	Up   time.Duration
	Down time.Duration
}

// Enabled reports whether the flap schedule injects anything.
func (fc FlapConfig) Enabled() bool { return fc.Up > 0 && fc.Down > 0 }

// FlapPhase returns the duration of phase i (even phases are up, odd
// phases are down) — a pure function of the config, exposed so tests can
// pin schedule reproducibility without running a transport.
func FlapPhase(fc FlapConfig, i int) time.Duration {
	base := fc.Up
	if i%2 == 1 {
		base = fc.Down
	}
	half := base / 2
	if half <= 0 {
		return base
	}
	r := splitmix64(uint64(fc.Seed)*0x9e3779b97f4a7c15 + uint64(i) + 1)
	return half + time.Duration(r%uint64(half+1))
}

// FlapSchedule returns the first n phase durations of the schedule.
func FlapSchedule(fc FlapConfig, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = FlapPhase(fc, i)
	}
	return out
}

// FlapDownAt reports whether the schedule is in a down phase after
// elapsed time since the schedule's start — again a pure function.
func FlapDownAt(fc FlapConfig, elapsed time.Duration) bool {
	if !fc.Enabled() || elapsed < 0 {
		return false
	}
	var cum time.Duration
	for i := 0; ; i++ {
		cum += FlapPhase(fc, i)
		if elapsed < cum {
			return i%2 == 1
		}
	}
}

// flapKey identifies one direction of one peer link for cursor caching.
type flapKey struct {
	peer    model.HostID
	inbound bool
}

// flapCursor caches how far into the schedule a link has advanced so
// long-running transports do not re-walk the whole schedule every frame.
type flapCursor struct {
	idx int
	end time.Duration // cumulative schedule time at which phase idx ends
}

// FaultConfig tunes the injected fault mix. All rates are probabilities
// in [0, 1]; the zero value injects nothing. DropRate/DupRate/DelayRate
// apply symmetrically to outbound frames (the pre-gray behaviour);
// Inbound/Outbound/Peers layer a directional process on top.
type FaultConfig struct {
	// Seed drives the fault process deterministically.
	Seed int64
	// DropRate silently discards outbound frames.
	DropRate float64
	// DupRate delivers outbound frames twice.
	DupRate float64
	// DelayRate holds outbound frames back for Delay before delivering
	// them asynchronously (reordering them past later sends).
	DelayRate float64
	Delay     time.Duration
	// Inbound applies a directional fault process to frames arriving
	// from every peer; Outbound to frames sent to every peer. Peers
	// overrides both directions for specific peers.
	Inbound  DirFault
	Outbound DirFault
	Peers    map[model.HostID]PeerFault
	// Clock supplies the time base for flap schedules (defaults to
	// time.Now; drills inject a fake clock for determinism).
	Clock func() time.Time
	// Obs receives the transport's fault counters, labelled by host
	// (prism_fault_*_total{host=...}). When nil the counters are not
	// recorded anywhere (the handles are nil-safe no-ops).
	Obs *obs.Registry
}

// ErrPeerPartitioned is returned by Send while an injected partition (or
// a flap down-phase) separates this transport from the destination peer.
var ErrPeerPartitioned = errors.New("prism: peer partitioned (injected)")

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with fault injection. The injected-fault
// counters land in cfg.Obs under prism_fault_*_total{host=...}.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	reg := cfg.Obs
	host := string(inner.Host())
	f := &FaultTransport{
		inner:       inner,
		partitioned: make(map[model.HostID]partitionState),
		sent:        reg.Counter(obs.Name("prism_fault_sent_total", "host", host)),
		dropped:     reg.Counter(obs.Name("prism_fault_dropped_total", "host", host)),
		duplicated:  reg.Counter(obs.Name("prism_fault_duplicated_total", "host", host)),
		delayed:     reg.Counter(obs.Name("prism_fault_delayed_total", "host", host)),
		blocked:     reg.Counter(obs.Name("prism_fault_blocked_total", "host", host)),
		flapped:     reg.Counter(obs.Name("prism_fault_flapped_total", "host", host)),
	}
	f.applyConfig(cfg)
	return f
}

// SetFaultConfig swaps the fault mix mid-run (drills heal or worsen the
// network between phases), reseeds the fault processes from cfg.Seed,
// and restarts the flap schedules. The counters and their registry are
// untouched: cfg.Obs is ignored here.
func (f *FaultTransport) SetFaultConfig(cfg FaultConfig) {
	f.mu.Lock()
	cfg.Obs = f.cfg.Obs
	f.applyConfig(cfg)
	f.mu.Unlock()
}

// applyConfig installs cfg and resets the derived fault state. Callers
// hold f.mu (or are the constructor).
func (f *FaultTransport) applyConfig(cfg FaultConfig) {
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	// The inbound process draws from its own stream so inbound and
	// outbound decisions cannot perturb each other's sequences.
	f.rngIn = rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed) + 0x9e37))))
	f.flaps = make(map[flapKey]*flapCursor)
	f.clock = cfg.Clock
	if f.clock == nil {
		f.clock = time.Now
	}
	f.start = f.clock()
}

// dirFault resolves the directional fault process for one peer and
// direction: the per-peer override when present, else the transport-wide
// default.
func (f *FaultTransport) dirFault(peer model.HostID, inbound bool) DirFault {
	if pf, ok := f.cfg.Peers[peer]; ok {
		if inbound {
			return pf.In
		}
		return pf.Out
	}
	if inbound {
		return f.cfg.Inbound
	}
	return f.cfg.Outbound
}

// flapDown reports whether the (peer, direction) link is currently in a
// flap down-phase. Callers hold f.mu.
func (f *FaultTransport) flapDown(peer model.HostID, inbound bool, fc FlapConfig) bool {
	if !fc.Enabled() {
		return false
	}
	elapsed := f.clock().Sub(f.start)
	if elapsed < 0 {
		return false
	}
	k := flapKey{peer: peer, inbound: inbound}
	cur, ok := f.flaps[k]
	if !ok {
		cur = &flapCursor{idx: 0, end: FlapPhase(fc, 0)}
		f.flaps[k] = cur
	}
	for elapsed >= cur.end {
		cur.idx++
		cur.end += FlapPhase(fc, cur.idx)
	}
	return cur.idx%2 == 1
}

// Host implements Transport.
func (f *FaultTransport) Host() model.HostID { return f.inner.Host() }

// Peers implements Transport. Partitioned peers stay listed: a partition
// models an unreachable host, not a topology change, so senders keep
// trying the direct path and ride out the outage via retries.
func (f *FaultTransport) Peers() []model.HostID { return f.inner.Peers() }

// SetReceiver implements Transport, interposing the inbound half of any
// active partition plus the inbound directional fault process.
func (f *FaultTransport) SetReceiver(recv func(from model.HostID, data []byte)) {
	f.inner.SetReceiver(func(from model.HostID, data []byte) {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		if f.partitioned[from].in {
			f.blocked.Inc()
			f.mu.Unlock()
			return
		}
		df := f.dirFault(from, true)
		if f.flapDown(from, true, df.Flap) {
			// Inbound loss during a down phase is silent by nature —
			// the sender already believed the frame was delivered.
			f.flapped.Inc()
			f.mu.Unlock()
			return
		}
		if df.DropRate > 0 && f.rngIn.Float64() < df.DropRate {
			f.dropped.Inc()
			f.mu.Unlock()
			return
		}
		var d time.Duration
		if df.DelayRate > 0 && df.Delay > 0 && f.rngIn.Float64() < df.DelayRate {
			d = df.Delay
			f.delayed.Inc()
			f.wg.Add(1)
		}
		f.mu.Unlock()
		if recv == nil {
			if d > 0 {
				f.wg.Done()
			}
			return
		}
		if d > 0 {
			go func() {
				defer f.wg.Done()
				time.Sleep(d)
				f.mu.Lock()
				cut := f.closed || f.partitioned[from].in
				if cut {
					f.blocked.Inc()
				}
				f.mu.Unlock()
				if cut {
					return
				}
				recv(from, data)
			}()
			return
		}
		recv(from, data)
	})
}

// Send implements Transport, applying the configured fault mix.
func (f *FaultTransport) Send(to model.HostID, data []byte, sizeKB float64) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("prism: fault transport closed")
	}
	if f.partitioned[to].out {
		f.blocked.Inc()
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPeerPartitioned, to)
	}
	df := f.dirFault(to, false)
	if f.flapDown(to, false, df.Flap) {
		// A flap down-phase is observable from the sending side, like a
		// short partition: the peer is unreachable right now.
		f.flapped.Inc()
		f.mu.Unlock()
		return fmt.Errorf("%w: %s (link flap)", ErrPeerPartitioned, to)
	}
	f.sent.Inc()
	drop := f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate
	if !drop && df.DropRate > 0 {
		drop = f.rng.Float64() < df.DropRate
	}
	dup := f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate
	var delayDur time.Duration
	if f.cfg.DelayRate > 0 && f.cfg.Delay > 0 && f.rng.Float64() < f.cfg.DelayRate {
		delayDur = f.cfg.Delay
	}
	if df.DelayRate > 0 && df.Delay > 0 && f.rng.Float64() < df.DelayRate && df.Delay > delayDur {
		delayDur = df.Delay
	}
	delay := delayDur > 0
	switch {
	case drop:
		f.dropped.Inc()
	case delay:
		f.delayed.Inc()
		f.wg.Add(1)
	case dup:
		f.duplicated.Inc()
	}
	f.mu.Unlock()

	if drop {
		return nil // silent loss: the sender believes it succeeded
	}
	if delay {
		go func() {
			defer f.wg.Done()
			time.Sleep(delayDur)
			// A partition that opened while the frame was in flight cuts
			// it: delayed frames are not immune to the outage they are
			// flying into.
			f.mu.Lock()
			cut := f.closed || f.partitioned[to].out
			if cut {
				f.blocked.Inc()
			}
			f.mu.Unlock()
			if cut {
				return
			}
			_ = f.inner.Send(to, data, sizeKB)
		}()
		return nil
	}
	err := f.inner.Send(to, data, sizeKB)
	if err == nil && dup {
		_ = f.inner.Send(to, data, sizeKB)
	}
	return err
}

// Partition opens (on=true) or heals (on=false) an injected partition
// between this host and peer, in both directions.
func (f *FaultTransport) Partition(peer model.HostID, on bool) {
	f.setPartition(peer, on, true, true)
}

// PartitionInbound cuts (or heals) only the inbound half of the link
// from peer: frames from peer are discarded, frames to peer still flow —
// the asymmetric outage at the heart of gray failures.
func (f *FaultTransport) PartitionInbound(peer model.HostID, on bool) {
	f.setPartition(peer, on, true, false)
}

// PartitionOutbound cuts (or heals) only the outbound half of the link
// to peer: sends fail fast, inbound frames still arrive.
func (f *FaultTransport) PartitionOutbound(peer model.HostID, on bool) {
	f.setPartition(peer, on, false, true)
}

func (f *FaultTransport) setPartition(peer model.HostID, on, in, out bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.partitioned[peer]
	if in {
		p.in = on
	}
	if out {
		p.out = on
	}
	if p.any() {
		f.partitioned[peer] = p
	} else {
		delete(f.partitioned, peer)
	}
}

// Close implements Transport: drains delayed deliveries, then closes the
// wrapped transport.
func (f *FaultTransport) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.wg.Wait()
	return f.inner.Close()
}
