package prism

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// FaultTransport decorates any Transport (simulated or TCP) with seeded,
// configurable fault injection — silent frame drops, delivery delay,
// duplicate delivery, and per-peer partitions — so the middleware's
// dependability claims are testable against the exact failure modes the
// paper's target environment exhibits (DSN'04 §3.1: unreliable wireless
// links, hosts that become temporarily unreachable).
//
// Drops are silent: Send reports success and the frame evaporates, like
// wireless loss the sender cannot observe. Per-hop retry loops never see
// an error, so the end-to-end retransmission layers (fetch retries,
// reconfig re-dispatch, outcome re-broadcast) have to earn their keep.
// Partitions, by contrast, are observable: Send fails fast, like an
// unreachable peer, and inbound frames from the partitioned peer are
// discarded too.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[model.HostID]bool
	closed      bool

	// The fault counters live in an obs.Registry (cfg.Obs, or a private
	// registry when none was supplied so Stats keeps working).
	sent, dropped, duplicated, delayed, blocked *obs.Counter

	// wg tracks in-flight delayed deliveries so Close can drain them.
	wg sync.WaitGroup
}

// FaultConfig tunes the injected fault mix. All rates are probabilities
// in [0, 1]; the zero value injects nothing.
type FaultConfig struct {
	// Seed drives the fault process deterministically.
	Seed int64
	// DropRate silently discards outbound frames.
	DropRate float64
	// DupRate delivers outbound frames twice.
	DupRate float64
	// DelayRate holds outbound frames back for Delay before delivering
	// them asynchronously (reordering them past later sends).
	DelayRate float64
	Delay     time.Duration
	// Obs receives the transport's fault counters, labelled by host
	// (prism_fault_*_total{host=...}). When nil the counters are not
	// recorded anywhere (the handles are nil-safe no-ops).
	Obs *obs.Registry
}

// ErrPeerPartitioned is returned by Send while an injected partition
// separates this transport from the destination peer.
var ErrPeerPartitioned = errors.New("prism: peer partitioned (injected)")

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with fault injection. The injected-fault
// counters land in cfg.Obs under prism_fault_*_total{host=...}.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	reg := cfg.Obs
	host := string(inner.Host())
	return &FaultTransport{
		inner:       inner,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		partitioned: make(map[model.HostID]bool),
		sent:        reg.Counter(obs.Name("prism_fault_sent_total", "host", host)),
		dropped:     reg.Counter(obs.Name("prism_fault_dropped_total", "host", host)),
		duplicated:  reg.Counter(obs.Name("prism_fault_duplicated_total", "host", host)),
		delayed:     reg.Counter(obs.Name("prism_fault_delayed_total", "host", host)),
		blocked:     reg.Counter(obs.Name("prism_fault_blocked_total", "host", host)),
	}
}

// SetFaultConfig swaps the fault mix mid-run (drills heal or worsen the
// network between phases) and reseeds the fault process from cfg.Seed.
// The counters and their registry are untouched: cfg.Obs is ignored
// here.
func (f *FaultTransport) SetFaultConfig(cfg FaultConfig) {
	f.mu.Lock()
	cfg.Obs = f.cfg.Obs
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.mu.Unlock()
}

// Host implements Transport.
func (f *FaultTransport) Host() model.HostID { return f.inner.Host() }

// Peers implements Transport. Partitioned peers stay listed: a partition
// models an unreachable host, not a topology change, so senders keep
// trying the direct path and ride out the outage via retries.
func (f *FaultTransport) Peers() []model.HostID { return f.inner.Peers() }

// SetReceiver implements Transport, interposing the inbound half of any
// active partition.
func (f *FaultTransport) SetReceiver(recv func(from model.HostID, data []byte)) {
	f.inner.SetReceiver(func(from model.HostID, data []byte) {
		f.mu.Lock()
		blocked := f.partitioned[from]
		if blocked {
			f.blocked.Inc()
		}
		f.mu.Unlock()
		if blocked || recv == nil {
			return
		}
		recv(from, data)
	})
}

// Send implements Transport, applying the configured fault mix.
func (f *FaultTransport) Send(to model.HostID, data []byte, sizeKB float64) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("prism: fault transport closed")
	}
	if f.partitioned[to] {
		f.blocked.Inc()
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPeerPartitioned, to)
	}
	f.sent.Inc()
	drop := f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate
	dup := f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate
	delay := f.cfg.DelayRate > 0 && f.cfg.Delay > 0 && f.rng.Float64() < f.cfg.DelayRate
	switch {
	case drop:
		f.dropped.Inc()
	case delay:
		f.delayed.Inc()
		f.wg.Add(1)
	case dup:
		f.duplicated.Inc()
	}
	f.mu.Unlock()

	if drop {
		return nil // silent loss: the sender believes it succeeded
	}
	if delay {
		d := f.cfg.Delay
		go func() {
			defer f.wg.Done()
			time.Sleep(d)
			_ = f.inner.Send(to, data, sizeKB)
		}()
		return nil
	}
	err := f.inner.Send(to, data, sizeKB)
	if err == nil && dup {
		_ = f.inner.Send(to, data, sizeKB)
	}
	return err
}

// Partition opens (on=true) or heals (on=false) an injected partition
// between this host and peer, in both directions.
func (f *FaultTransport) Partition(peer model.HostID, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if on {
		f.partitioned[peer] = true
	} else {
		delete(f.partitioned, peer)
	}
}

// Close implements Transport: drains delayed deliveries, then closes the
// wrapped transport.
func (f *FaultTransport) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.wg.Wait()
	return f.inner.Close()
}
