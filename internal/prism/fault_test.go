package prism

import (
	"errors"
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/netsim"
	"dif/internal/obs"
)

// faultCounters reads a fault transport's injected-fault tallies from its
// registry — the replacement for the deleted Stats accessor. The registry
// counters update synchronously inside Send, so per-frame decisions are
// observable without racing async delivery.
func faultCounters(reg *obs.Registry, host string) map[string]int {
	snap := reg.Snapshot()
	out := make(map[string]int)
	for _, k := range []string{"sent", "dropped", "duplicated", "delayed", "blocked"} {
		v, _ := snap.Value(obs.Name("prism_fault_"+k+"_total", "host", host))
		out[k] = int(v)
	}
	return out
}

// faultPair builds two netsim-backed transports wrapped in fault
// injectors with the given configs.
func faultPair(t *testing.T, fcA, fcB FaultConfig) (*FaultTransport, *FaultTransport) {
	t.Helper()
	fabric := netsim.NewFabric(7)
	t.Cleanup(fabric.Close)
	for _, h := range []model.HostID{"a", "b"} {
		if err := fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.Connect("a", "b", netsim.LinkState{Reliability: 1, BandwidthKB: 10_000}); err != nil {
		t.Fatal(err)
	}
	ta, err := NewNetsimTransport(fabric, "a")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewNetsimTransport(fabric, "b")
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultTransport(ta, fcA), NewFaultTransport(tb, fcB)
}

func countingReceiver() (func(model.HostID, []byte), func() int) {
	ch := make(chan struct{}, 1024)
	recv := func(model.HostID, []byte) { ch <- struct{}{} }
	count := func() int { return len(ch) }
	return recv, count
}

func TestFaultTransportSilentDrop(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DropRate: 1, Obs: reg}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	for i := 0; i < 20; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatalf("silent drop must not surface an error, got %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if n := got(); n != 0 {
		t.Fatalf("%d frames leaked through a DropRate=1 transport", n)
	}
	st := faultCounters(reg, "a")
	if st["dropped"] != 20 || st["sent"] != 20 {
		t.Fatalf("counters = %v, want 20 sent / 20 dropped", st)
	}
}

func TestFaultTransportDuplicateDelivery(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DupRate: 1, Obs: reg}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitForCond(t, func() bool { return got() == 20 })
	if st := faultCounters(reg, "a"); st["duplicated"] != 10 {
		t.Fatalf("counters = %v, want 10 duplicated", st)
	}
}

func TestFaultTransportPartition(t *testing.T) {
	fa, fb := faultPair(t, FaultConfig{}, FaultConfig{})
	recvA, gotA := countingReceiver()
	recvB, gotB := countingReceiver()
	fa.SetReceiver(recvA)
	fb.SetReceiver(recvB)

	fa.Partition("b", true)
	if err := fa.Send("b", []byte("x"), 1); !errors.Is(err, ErrPeerPartitioned) {
		t.Fatalf("send across partition: err = %v, want ErrPeerPartitioned", err)
	}
	// Inbound is blocked too: b can send, a must not see it.
	if err := fb.Send("a", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if gotA() != 0 {
		t.Fatal("partitioned transport delivered an inbound frame")
	}

	fa.Partition("b", false)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	waitForCond(t, func() bool { return gotB() == 1 })
}

func TestFaultTransportDeterministicDrops(t *testing.T) {
	pattern := func() []bool {
		reg := obs.NewRegistry()
		fa, _ := faultPair(t, FaultConfig{Seed: 99, DropRate: 0.5, Obs: reg}, FaultConfig{})
		out := make([]bool, 0, 50)
		last := 0
		for i := 0; i < 50; i++ {
			if err := fa.Send("b", []byte("x"), 1); err != nil {
				t.Fatal(err)
			}
			// The registry counters update synchronously inside Send, so
			// the drop decision per frame is observable without racing
			// async delivery.
			dropped := faultCounters(reg, "a")["dropped"]
			out = append(out, dropped == last)
			last = dropped
		}
		return out
	}
	first, second := pattern(), pattern()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("drop pattern diverged at frame %d despite identical seeds", i)
		}
	}
	drops := 0
	for _, delivered := range first {
		if !delivered {
			drops++
		}
	}
	if drops < 10 || drops > 40 {
		t.Fatalf("%d of 50 frames dropped, want roughly half", drops)
	}
}

func TestFaultTransportDelayedDelivery(t *testing.T) {
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DelayRate: 1, Delay: 60 * time.Millisecond}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got() != 0 {
		t.Fatal("delayed frame arrived early")
	}
	waitForCond(t, func() bool { return got() == 1 })
	// Close drains the delayed-delivery goroutines.
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitForCond polls cond with a longer deadline than dist_test's waitFor
// (fault tests sleep through injected delays).
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}
