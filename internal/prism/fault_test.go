package prism

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/netsim"
	"dif/internal/obs"
)

// faultCounters reads a fault transport's injected-fault tallies from its
// registry — the replacement for the deleted Stats accessor. The registry
// counters update synchronously inside Send, so per-frame decisions are
// observable without racing async delivery.
func faultCounters(reg *obs.Registry, host string) map[string]int {
	snap := reg.Snapshot()
	out := make(map[string]int)
	for _, k := range []string{"sent", "dropped", "duplicated", "delayed", "blocked"} {
		v, _ := snap.Value(obs.Name("prism_fault_"+k+"_total", "host", host))
		out[k] = int(v)
	}
	return out
}

// faultPair builds two netsim-backed transports wrapped in fault
// injectors with the given configs.
func faultPair(t *testing.T, fcA, fcB FaultConfig) (*FaultTransport, *FaultTransport) {
	t.Helper()
	fabric := netsim.NewFabric(7)
	t.Cleanup(fabric.Close)
	for _, h := range []model.HostID{"a", "b"} {
		if err := fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.Connect("a", "b", netsim.LinkState{Reliability: 1, BandwidthKB: 10_000}); err != nil {
		t.Fatal(err)
	}
	ta, err := NewNetsimTransport(fabric, "a")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewNetsimTransport(fabric, "b")
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultTransport(ta, fcA), NewFaultTransport(tb, fcB)
}

func countingReceiver() (func(model.HostID, []byte), func() int) {
	ch := make(chan struct{}, 1024)
	recv := func(model.HostID, []byte) { ch <- struct{}{} }
	count := func() int { return len(ch) }
	return recv, count
}

func TestFaultTransportSilentDrop(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DropRate: 1, Obs: reg}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	for i := 0; i < 20; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatalf("silent drop must not surface an error, got %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if n := got(); n != 0 {
		t.Fatalf("%d frames leaked through a DropRate=1 transport", n)
	}
	st := faultCounters(reg, "a")
	if st["dropped"] != 20 || st["sent"] != 20 {
		t.Fatalf("counters = %v, want 20 sent / 20 dropped", st)
	}
}

func TestFaultTransportDuplicateDelivery(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DupRate: 1, Obs: reg}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitForCond(t, func() bool { return got() == 20 })
	if st := faultCounters(reg, "a"); st["duplicated"] != 10 {
		t.Fatalf("counters = %v, want 10 duplicated", st)
	}
}

func TestFaultTransportPartition(t *testing.T) {
	fa, fb := faultPair(t, FaultConfig{}, FaultConfig{})
	recvA, gotA := countingReceiver()
	recvB, gotB := countingReceiver()
	fa.SetReceiver(recvA)
	fb.SetReceiver(recvB)

	fa.Partition("b", true)
	if err := fa.Send("b", []byte("x"), 1); !errors.Is(err, ErrPeerPartitioned) {
		t.Fatalf("send across partition: err = %v, want ErrPeerPartitioned", err)
	}
	// Inbound is blocked too: b can send, a must not see it.
	if err := fb.Send("a", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if gotA() != 0 {
		t.Fatal("partitioned transport delivered an inbound frame")
	}

	fa.Partition("b", false)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	waitForCond(t, func() bool { return gotB() == 1 })
}

func TestFaultTransportDeterministicDrops(t *testing.T) {
	pattern := func() []bool {
		reg := obs.NewRegistry()
		fa, _ := faultPair(t, FaultConfig{Seed: 99, DropRate: 0.5, Obs: reg}, FaultConfig{})
		out := make([]bool, 0, 50)
		last := 0
		for i := 0; i < 50; i++ {
			if err := fa.Send("b", []byte("x"), 1); err != nil {
				t.Fatal(err)
			}
			// The registry counters update synchronously inside Send, so
			// the drop decision per frame is observable without racing
			// async delivery.
			dropped := faultCounters(reg, "a")["dropped"]
			out = append(out, dropped == last)
			last = dropped
		}
		return out
	}
	first, second := pattern(), pattern()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("drop pattern diverged at frame %d despite identical seeds", i)
		}
	}
	drops := 0
	for _, delivered := range first {
		if !delivered {
			drops++
		}
	}
	if drops < 10 || drops > 40 {
		t.Fatalf("%d of 50 frames dropped, want roughly half", drops)
	}
}

func TestFaultTransportDelayedDelivery(t *testing.T) {
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DelayRate: 1, Delay: 60 * time.Millisecond}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got() != 0 {
		t.Fatal("delayed frame arrived early")
	}
	waitForCond(t, func() bool { return got() == 1 })
	// Close drains the delayed-delivery goroutines.
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitForCond polls cond with a longer deadline than dist_test's waitFor
// (fault tests sleep through injected delays).
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}

// TestFaultTransportDirectionalMatrix pins the gray-failure matrix: the
// a→b direction lossy, b→a clean, driven by b's inbound fault process.
func TestFaultTransportDirectionalMatrix(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{},
		FaultConfig{Seed: 11, Inbound: DirFault{DropRate: 0.6}, Obs: reg})
	recvA, gotA := countingReceiver()
	recvB, gotB := countingReceiver()
	fa.SetReceiver(recvA)
	fb.SetReceiver(recvB)
	for i := 0; i < 100; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
		if err := fb.Send("a", []byte("y"), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitForCond(t, func() bool { return gotA() == 100 })
	time.Sleep(30 * time.Millisecond)
	if n := gotB(); n < 10 || n > 70 {
		t.Fatalf("lossy direction delivered %d of 100, want roughly 40%%", n)
	}
	if d := faultCounters(reg, "b")["dropped"]; d+gotB() != 100 {
		t.Fatalf("dropped(%d) + delivered(%d) != 100", d, gotB())
	}
}

// TestFaultTransportPerPeerOverride pins that a Peers entry replaces the
// transport-wide directional mix for that peer only.
func TestFaultTransportPerPeerOverride(t *testing.T) {
	fabric := netsim.NewFabric(7)
	t.Cleanup(fabric.Close)
	for _, h := range []model.HostID{"a", "b", "c"} {
		if err := fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]model.HostID{{"a", "b"}, {"a", "c"}} {
		if err := fabric.Connect(pair[0], pair[1], netsim.LinkState{Reliability: 1, BandwidthKB: 10_000}); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := NewNetsimTransport(fabric, "a")
	if err != nil {
		t.Fatal(err)
	}
	fa := NewFaultTransport(ta, FaultConfig{
		Seed:     3,
		Outbound: DirFault{DropRate: 1},
		Peers:    map[model.HostID]PeerFault{"c": {}},
	})
	recvs := make(map[model.HostID]func() int)
	for _, h := range []model.HostID{"b", "c"} {
		tr, err := NewNetsimTransport(fabric, h)
		if err != nil {
			t.Fatal(err)
		}
		recv, got := countingReceiver()
		tr.SetReceiver(recv)
		recvs[h] = got
	}
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
		if err := fa.Send("c", []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitForCond(t, func() bool { return recvs["c"]() == 10 })
	if n := recvs["b"](); n != 0 {
		t.Fatalf("default Outbound DropRate=1 leaked %d frames to b", n)
	}
}

// TestFaultTransportOneWayPartition pins the asymmetric partition: with
// only the inbound half cut, outbound sends still flow and vice versa.
func TestFaultTransportOneWayPartition(t *testing.T) {
	fa, fb := faultPair(t, FaultConfig{}, FaultConfig{})
	recvA, gotA := countingReceiver()
	recvB, gotB := countingReceiver()
	fa.SetReceiver(recvA)
	fb.SetReceiver(recvB)

	fa.PartitionInbound("b", true)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatalf("outbound must stay open under an inbound-only cut: %v", err)
	}
	if err := fb.Send("a", []byte("y"), 1); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool { return gotB() == 1 })
	time.Sleep(30 * time.Millisecond)
	if gotA() != 0 {
		t.Fatal("inbound-partitioned transport delivered an inbound frame")
	}

	fa.PartitionInbound("b", false)
	fa.PartitionOutbound("b", true)
	if err := fa.Send("b", []byte("x"), 1); !errors.Is(err, ErrPeerPartitioned) {
		t.Fatalf("outbound-partitioned send: err = %v, want ErrPeerPartitioned", err)
	}
	if err := fb.Send("a", []byte("y"), 1); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool { return gotA() == 1 })

	fa.PartitionOutbound("b", false)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	waitForCond(t, func() bool { return gotB() == 2 })
}

// TestFlapScheduleDeterministic pins that the flap schedule is a pure
// function of its config: same seed → byte-identical phases, different
// seed → a different schedule, and each phase lands in [base/2, base].
func TestFlapScheduleDeterministic(t *testing.T) {
	cfg := FlapConfig{Seed: 42, Up: 100 * time.Millisecond, Down: 40 * time.Millisecond}
	a, b := FlapSchedule(cfg, 64), FlapSchedule(cfg, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("phase %d diverged across identical configs: %v vs %v", i, a[i], b[i])
		}
		base := cfg.Up
		if i%2 == 1 {
			base = cfg.Down
		}
		if a[i] < base/2 || a[i] > base {
			t.Fatalf("phase %d = %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
	other := FlapSchedule(FlapConfig{Seed: 43, Up: cfg.Up, Down: cfg.Down}, 64)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultTransportFlap pins the transport-level flap behaviour against
// the pure schedule, driving time with an injected clock: sends fail
// exactly while FlapDownAt says the link is down.
func TestFaultTransportFlap(t *testing.T) {
	flap := FlapConfig{Seed: 9, Up: 20 * time.Millisecond, Down: 10 * time.Millisecond}
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	fa, fb := faultPair(t, FaultConfig{Seed: 9, Outbound: DirFault{Flap: flap}, Clock: clock}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)

	delivered := 0
	for step := 0; step < 200; step++ {
		elapsed := time.Duration(step) * time.Millisecond
		mu.Lock()
		now = time.Unix(0, 0).Add(elapsed)
		mu.Unlock()
		err := fa.Send("b", []byte("x"), 1)
		if down := FlapDownAt(flap, elapsed); down && !errors.Is(err, ErrPeerPartitioned) {
			t.Fatalf("step %d: schedule says down, Send returned %v", step, err)
		} else if !down && err != nil {
			t.Fatalf("step %d: schedule says up, Send returned %v", step, err)
		}
		if err == nil {
			delivered++
		}
	}
	if delivered == 0 || delivered == 200 {
		t.Fatalf("flap delivered %d of 200 — schedule never toggled", delivered)
	}
	waitForCond(t, func() bool { return got() == delivered })
}

// TestFaultTransportDelayedFramePartitionCut is the regression test for
// the in-flight-delay bug: a frame already sitting in the delay
// goroutine when a partition opens must NOT be delivered after the cut.
func TestFaultTransportDelayedFramePartitionCut(t *testing.T) {
	reg := obs.NewRegistry()
	fa, fb := faultPair(t, FaultConfig{Seed: 1, DelayRate: 1, Delay: 80 * time.Millisecond, Obs: reg}, FaultConfig{})
	recv, got := countingReceiver()
	fb.SetReceiver(recv)
	if err := fa.Send("b", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	// The frame is now in flight inside the delay goroutine. Cut the
	// link before it lands.
	fa.Partition("b", true)
	time.Sleep(150 * time.Millisecond)
	if n := got(); n != 0 {
		t.Fatalf("delayed frame crossed a partition that opened before delivery (%d delivered)", n)
	}
	if st := faultCounters(reg, "a"); st["blocked"] == 0 {
		t.Fatal("cut delayed frame was not counted as blocked")
	}
	// Healing afterwards must not resurrect the dropped frame.
	fa.Partition("b", false)
	time.Sleep(30 * time.Millisecond)
	if n := got(); n != 0 {
		t.Fatalf("dropped delayed frame resurrected after heal (%d delivered)", n)
	}
}
