package prism

import (
	"fmt"
	"sort"

	"dif/internal/model"
	"dif/internal/obs"
)

// Goal-state control plane (the streamed successor to wave broadcast).
//
// The deployer maintains a per-agent desired manifest — the components
// each host should be running, with their factory types and the
// coordinator's relocation hints — under a monotonically increasing
// generation number. Reconfiguration is level-triggered: an agent that
// connects, rejoins after a partition, restarts, or survives a leader
// failover announces its current generation and manifest, and the
// deployer ships ONE delta that converges it to the latest goal state.
// No wave replay, no replan: the delta is computed against what the
// agent actually has, not against the history it missed.
//
// The two-phase wave machinery is rebuilt on top of goal-state
// transitions: a wave is a fenced generation bump proposed to its
// participants (ReconfigCommand.Gen carries the generation each
// destination reaches if the wave commits) and committed by publishing
// the new generations in the outcome broadcast (WaveOutcome.Gens).
// Aborted waves never advance a generation.

// Goal-state control event names.
const (
	EvGoalAnnounce = "admin.goalAnnounce"
	EvGoalDelta    = "admin.goalDelta"
	EvGoalAck      = "admin.goalAck"
)

// GoalStateVersion is the schema version stamped on every goal-state
// frame. Decoders reject frames from a NEWER major version with a clean
// error (never a misparse), and skip the extension tail same-version
// writers may append — the two halves of rolling-upgrade safety.
const GoalStateVersion = 1

// GoalComponent is one entry of a host's desired manifest: the
// component and the factory type an agent needs to re-instantiate it
// when the live instance died with a previous lifetime.
type GoalComponent struct {
	ID   string
	Type string
}

// RelocEntry is one relocation hint shipped with a delta, priming the
// agent's bounce table so stale routes resolve without a coordinator
// round trip.
type RelocEntry struct {
	Comp string
	Host model.HostID
}

// GoalAnnounce is the agent's level report: its current generation and
// the manifest it is actually running. Sent on connect, rejoin,
// restart, and leader failover; the deployer answers with a GoalDelta.
type GoalAnnounce struct {
	Host        model.HostID
	Incarnation uint64
	Generation  uint64
	Manifest    []string // sorted component IDs currently hosted
}

// GoalDelta converges one agent to the current goal state. Full deltas
// (the announce-triggered resync path) are computed against the
// announced manifest, so applying Acquire and Remove yields exactly the
// goal manifest at Generation.
type GoalDelta struct {
	Host model.HostID
	// Coordinator is the live leader that computed the delta — the ack
	// target, and the origin the agent's fence learns a higher term from.
	Coordinator model.HostID
	// Term is the issuing leader's fencing term (zero = legacy unfenced);
	// agents drop deltas below their fence exactly like wave frames.
	Term uint64
	// FromGen is the generation the delta assumes the agent is at (the
	// announced one for Full deltas).
	FromGen uint64
	// Generation is the goal generation reached after applying.
	Generation uint64
	// Full marks a level resync: Acquire/Remove were computed against the
	// agent's announced manifest rather than a generation diff.
	Full    bool
	Acquire []GoalComponent
	Remove  []string
	Reloc   []RelocEntry
}

// GoalAck confirms an applied delta and carries the agent's post-apply
// manifest — the byte-for-byte witness the resync invariant checks.
type GoalAck struct {
	Host       model.HostID
	Generation uint64
	Manifest   []string // sorted component IDs after applying the delta
}

// Goal-state frame op codes (after the version field).
const (
	goalOpAnnounce byte = 1
	goalOpDelta    byte = 2
	goalOpAck      byte = 3
)

// appendGoalPayload encodes a goal-state payload: version, op, op
// fields, then a length-prefixed extension tail (empty at v1) that
// same-version decoders skip — unknown appended fields are forward
// compatible without a version bump.
func appendGoalPayload(dst []byte, p any) []byte {
	dst = appendUvarint(dst, GoalStateVersion)
	switch g := p.(type) {
	case GoalAnnounce:
		dst = append(dst, goalOpAnnounce)
		dst = appendString(dst, string(g.Host))
		dst = appendUvarint(dst, g.Incarnation)
		dst = appendUvarint(dst, g.Generation)
		dst = appendUvarint(dst, uint64(len(g.Manifest)))
		for _, id := range g.Manifest {
			dst = appendString(dst, id)
		}
	case GoalDelta:
		dst = append(dst, goalOpDelta)
		dst = appendString(dst, string(g.Host))
		dst = appendString(dst, string(g.Coordinator))
		dst = appendUvarint(dst, g.Term)
		dst = appendUvarint(dst, g.FromGen)
		dst = appendUvarint(dst, g.Generation)
		full := byte(0)
		if g.Full {
			full = 1
		}
		dst = append(dst, full)
		dst = appendUvarint(dst, uint64(len(g.Acquire)))
		for _, gc := range g.Acquire {
			dst = appendString(dst, gc.ID)
			dst = appendString(dst, gc.Type)
		}
		dst = appendUvarint(dst, uint64(len(g.Remove)))
		for _, id := range g.Remove {
			dst = appendString(dst, id)
		}
		dst = appendUvarint(dst, uint64(len(g.Reloc)))
		for _, re := range g.Reloc {
			dst = appendString(dst, re.Comp)
			dst = appendString(dst, string(re.Host))
		}
	case GoalAck:
		dst = append(dst, goalOpAck)
		dst = appendString(dst, string(g.Host))
		dst = appendUvarint(dst, g.Generation)
		dst = appendUvarint(dst, uint64(len(g.Manifest)))
		for _, id := range g.Manifest {
			dst = appendString(dst, id)
		}
	}
	dst = appendUvarint(dst, 0) // extension tail: empty at v1
	return dst
}

// decodeGoalPayload decodes a goal-state payload from r.
func decodeGoalPayload(r *binReader) (any, error) {
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version > GoalStateVersion {
		return nil, fmt.Errorf("binary event: unsupported goal-state version %d (this peer speaks v%d)",
			version, GoalStateVersion)
	}
	if version == 0 {
		return nil, fmt.Errorf("binary event: goal-state version 0 is invalid")
	}
	op, err := r.byte()
	if err != nil {
		return nil, err
	}
	var payload any
	var s string
	switch op {
	case goalOpAnnounce:
		var g GoalAnnounce
		if s, err = r.str(); err != nil {
			return nil, err
		}
		g.Host = model.HostID(s)
		if g.Incarnation, err = r.uvarint(); err != nil {
			return nil, err
		}
		if g.Generation, err = r.uvarint(); err != nil {
			return nil, err
		}
		if g.Manifest, err = decodeStringList(r); err != nil {
			return nil, err
		}
		payload = g
	case goalOpDelta:
		var g GoalDelta
		if s, err = r.str(); err != nil {
			return nil, err
		}
		g.Host = model.HostID(s)
		if s, err = r.str(); err != nil {
			return nil, err
		}
		g.Coordinator = model.HostID(s)
		if g.Term, err = r.uvarint(); err != nil {
			return nil, err
		}
		if g.FromGen, err = r.uvarint(); err != nil {
			return nil, err
		}
		if g.Generation, err = r.uvarint(); err != nil {
			return nil, err
		}
		full, err := r.byte()
		if err != nil {
			return nil, err
		}
		g.Full = full != 0
		nAcq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nAcq > uint64(len(r.b)) {
			return nil, fmt.Errorf("binary event: %d goal acquisitions exceed frame", nAcq)
		}
		for i := uint64(0); i < nAcq; i++ {
			var gc GoalComponent
			if gc.ID, err = r.str(); err != nil {
				return nil, err
			}
			if gc.Type, err = r.str(); err != nil {
				return nil, err
			}
			g.Acquire = append(g.Acquire, gc)
		}
		if g.Remove, err = decodeStringList(r); err != nil {
			return nil, err
		}
		nReloc, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nReloc > uint64(len(r.b)) {
			return nil, fmt.Errorf("binary event: %d relocation hints exceed frame", nReloc)
		}
		for i := uint64(0); i < nReloc; i++ {
			var re RelocEntry
			if re.Comp, err = r.str(); err != nil {
				return nil, err
			}
			if s, err = r.str(); err != nil {
				return nil, err
			}
			re.Host = model.HostID(s)
			g.Reloc = append(g.Reloc, re)
		}
		payload = g
	case goalOpAck:
		var g GoalAck
		if s, err = r.str(); err != nil {
			return nil, err
		}
		g.Host = model.HostID(s)
		if g.Generation, err = r.uvarint(); err != nil {
			return nil, err
		}
		if g.Manifest, err = decodeStringList(r); err != nil {
			return nil, err
		}
		payload = g
	default:
		return nil, fmt.Errorf("binary event: unknown goal-state op %d", op)
	}
	// Skip the extension tail: fields appended by a same-version peer we
	// do not know about yet.
	extLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if _, err := r.bytes(extLen); err != nil {
		return nil, err
	}
	return payload, nil
}

func decodeStringList(r *binReader) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("binary event: %d list entries exceed frame", n)
	}
	var out []string
	for i := uint64(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// goalEntry is one agent's goal state as the deployer tracks it.
type goalEntry struct {
	Gen      uint64
	Acked    uint64            // highest generation the agent acknowledged
	Manifest map[string]string // component ID → factory type
}

func (g *goalEntry) sortedIDs() []string {
	out := make([]string, 0, len(g.Manifest))
	for id := range g.Manifest {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// goalTable is the deployer's per-agent goal state. With a durable
// store attached its mutations are checkpointed (RecGoalState) and
// replicated to standbys through the same stream as the wave records,
// so generations survive restarts and leader failovers.
type goalTable struct {
	entries map[model.HostID]*goalEntry
}

func newGoalTable() *goalTable {
	return &goalTable{entries: make(map[model.HostID]*goalEntry)}
}

func (t *goalTable) entry(h model.HostID) *goalEntry {
	e := t.entries[h]
	if e == nil {
		e = &goalEntry{Manifest: make(map[string]string)}
		t.entries[h] = e
	}
	return e
}

// ownerOf finds the host whose goal manifest currently names comp.
func (t *goalTable) ownerOf(comp string) (model.HostID, bool) {
	for h, e := range t.entries {
		if _, ok := e.Manifest[comp]; ok {
			return h, true
		}
	}
	return "", false
}

// SeedGoalState installs the initial per-host goal manifests at
// generation 1. Hosts already carrying goal state (a restarted deployer
// restored them from its log) are left untouched, so seeding after a
// resume never rolls a generation back.
func (d *DeployerComponent) SeedGoalState(manifests map[model.HostID][]GoalComponent) {
	d.mu.Lock()
	hosts := make([]model.HostID, 0, len(manifests))
	for h := range manifests {
		if e := d.goal.entries[h]; e != nil && e.Gen > 0 {
			continue
		}
		hosts = append(hosts, h)
	}
	sortHostIDs(hosts)
	for _, h := range hosts {
		e := d.goal.entry(h)
		e.Gen = 1
		e.Manifest = make(map[string]string, len(manifests[h]))
		for _, gc := range manifests[h] {
			e.Manifest[gc.ID] = gc.Type
		}
	}
	d.mu.Unlock()
	for _, h := range hosts {
		d.ckptGoal(h)
	}
}

// RelocateGoal records an out-of-band placement in the goal table: comp
// (of the given factory type) now belongs on host `to`; whichever host's
// manifest previously named it loses it. Both touched generations bump.
// Callers use it for placements that bypass the wave machinery — crash
// recovery restoring origin copies on the master, test worlds placing
// components directly.
func (d *DeployerComponent) RelocateGoal(comp, typeName string, to model.HostID) {
	d.mu.Lock()
	var touched []model.HostID
	if from, ok := d.goal.ownerOf(comp); ok {
		if from == to {
			// Type refresh only; no generation bump.
			d.goal.entry(to).Manifest[comp] = typeName
			d.mu.Unlock()
			d.ckptGoal(to)
			return
		}
		e := d.goal.entry(from)
		delete(e.Manifest, comp)
		e.Gen++
		touched = append(touched, from)
	}
	if to != "" {
		e := d.goal.entry(to)
		e.Manifest[comp] = typeName
		e.Gen++
		touched = append(touched, to)
	}
	d.mu.Unlock()
	sortHostIDs(touched)
	for _, h := range touched {
		d.ckptGoal(h)
	}
}

// applyWaveToGoal folds a committed wave's moves into the goal table
// and returns the participants' new generations (the outcome
// broadcast's Gens). Idempotent: a move whose destination already owns
// the component is skipped, so Resume can re-apply a decided wave whose
// goal checkpoints were lost between the decision record and the crash.
func (d *DeployerComponent) applyWaveToGoal(moves map[string]model.HostID) map[model.HostID]uint64 {
	comps := make([]string, 0, len(moves))
	for comp := range moves {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	d.mu.Lock()
	touched := make(map[model.HostID]bool)
	for _, comp := range comps {
		dst := moves[comp]
		from, ok := d.goal.ownerOf(comp)
		if ok && from == dst {
			continue
		}
		typeName := ""
		if ok {
			e := d.goal.entry(from)
			typeName = e.Manifest[comp]
			delete(e.Manifest, comp)
			touched[from] = true
		}
		d.goal.entry(dst).Manifest[comp] = typeName
		touched[dst] = true
	}
	hosts := make([]model.HostID, 0, len(touched))
	for h := range touched {
		d.goal.entry(h).Gen++
		hosts = append(hosts, h)
	}
	gens := make(map[model.HostID]uint64, len(d.goal.entries))
	for h, e := range d.goal.entries {
		gens[h] = e.Gen
	}
	d.mu.Unlock()
	sortHostIDs(hosts)
	for _, h := range hosts {
		d.ckptGoal(h)
	}
	return gens
}

// pendingGen returns the generation host h would reach if an in-flight
// wave touching it commits (stamped on ReconfigCommand.Gen).
func (d *DeployerComponent) pendingGen(h model.HostID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.goal.entry(h).Gen + 1
}

// goalGensFor snapshots the current generations of the given
// participant set (the resumed-outcome broadcast's Gens: level
// semantics, agents adopt the latest).
func (d *DeployerComponent) goalGensFor(participants map[model.HostID]bool) map[model.HostID]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	gens := make(map[model.HostID]uint64, len(participants))
	for h := range participants {
		gens[h] = d.goal.entry(h).Gen
	}
	return gens
}

// GoalGeneration returns the deployer's current goal generation for h.
func (d *DeployerComponent) GoalGeneration(h model.HostID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e := d.goal.entries[h]; e != nil {
		return e.Gen
	}
	return 0
}

// GoalAcked returns the highest generation h has acknowledged.
func (d *DeployerComponent) GoalAcked(h model.HostID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e := d.goal.entries[h]; e != nil {
		return e.Acked
	}
	return 0
}

// GoalManifest returns the sorted component IDs of h's goal manifest.
func (d *DeployerComponent) GoalManifest(h model.HostID) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e := d.goal.entries[h]; e != nil {
		return e.sortedIDs()
	}
	return nil
}

// handleGoalAnnounce answers an agent's level report with one full
// delta converging it to the current goal state. Only the lease holder
// answers; a deposed deployer's reply would be fenced anyway. An agent
// announcing a generation AHEAD of the table (a diverged lifetime, or a
// deployer that lost state) is clamped back to the authoritative goal
// and counted as divergence.
func (d *DeployerComponent) handleGoalAnnounce(ga GoalAnnounce) {
	if ga.Host == "" || d.deposed() {
		return
	}
	if d.cfg.LegacyControl {
		return
	}
	host := string(d.arch.Host())
	d.mu.Lock()
	e := d.goal.entry(ga.Host)
	gen := e.Gen
	goalSet := make(map[string]string, len(e.Manifest))
	for id, typ := range e.Manifest {
		goalSet[id] = typ
	}
	d.mu.Unlock()
	if ga.Generation > gen {
		d.arch.Obs().Counter(obs.Name("prism_goal_divergence_total", "host", host)).Inc()
	}

	have := make(map[string]bool, len(ga.Manifest))
	for _, id := range ga.Manifest {
		have[id] = true
	}
	delta := GoalDelta{
		Host:        ga.Host,
		Coordinator: d.arch.Host(),
		Term:        d.term(),
		FromGen:     ga.Generation,
		Generation:  gen,
		Full:        true,
	}
	acqIDs := make([]string, 0, len(goalSet))
	for id := range goalSet {
		if !have[id] {
			acqIDs = append(acqIDs, id)
		}
	}
	sort.Strings(acqIDs)
	for _, id := range acqIDs {
		delta.Acquire = append(delta.Acquire, GoalComponent{ID: id, Type: goalSet[id]})
	}
	for _, id := range ga.Manifest {
		if _, ok := goalSet[id]; !ok {
			delta.Remove = append(delta.Remove, id)
		}
	}
	sort.Strings(delta.Remove)
	if dc := d.arch.DistributionConnector(d.cfg.Bus); dc != nil {
		reloc := dc.RelocationSnapshot()
		comps := make([]string, 0, len(reloc))
		for comp := range reloc {
			comps = append(comps, comp)
		}
		sort.Strings(comps)
		for _, comp := range comps {
			delta.Reloc = append(delta.Reloc, RelocEntry{Comp: comp, Host: reloc[comp]})
		}
	}
	d.arch.Obs().Counter(obs.Name("prism_goal_delta_sent_total", "host", host)).Inc()
	_ = d.sendControl(ga.Host, Event{
		Name: EvGoalDelta, Target: AdminID, Payload: delta, SizeKB: 0.5,
	})
}

// handleGoalAck records an agent's acknowledged generation and checks
// the resync invariant: an ack at the current generation must carry a
// manifest byte-for-byte equal to the goal manifest.
func (d *DeployerComponent) handleGoalAck(ack GoalAck) {
	if ack.Host == "" {
		return
	}
	d.mu.Lock()
	e := d.goal.entry(ack.Host)
	if ack.Generation > e.Acked {
		e.Acked = ack.Generation
	}
	current := ack.Generation == e.Gen
	goalIDs := e.sortedIDs()
	d.mu.Unlock()
	if current && !equalStrings(goalIDs, ack.Manifest) {
		d.arch.Obs().Counter(obs.Name("prism_goal_resync_mismatch_total",
			"host", string(d.arch.Host()))).Inc()
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// localManifest is the sorted list of application components the agent
// is actually running (admin and deployer excluded).
func (a *AdminComponent) localManifest() []string {
	var out []string
	for _, id := range a.arch.ComponentIDs() {
		if id == AdminID || id == DeployerID {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// GoalGeneration returns the agent's current goal generation.
func (a *AdminComponent) GoalGeneration() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.goalGen
}

// AnnounceGoalState sends the agent's level report (generation +
// manifest) to the current lease holder. Call it on connect, rejoin,
// restart, and whenever leadership moved: the deployer answers with one
// delta that converges this host to the latest goal state, whatever was
// missed in between. A legacy-control agent never announces.
func (a *AdminComponent) AnnounceGoalState() error {
	if a.cfg.LegacyControl {
		return nil
	}
	a.mu.Lock()
	gen := a.goalGen
	dep := a.leaseHolder
	a.mu.Unlock()
	if dep == "" {
		dep = a.cfg.Deployer
	}
	ga := GoalAnnounce{
		Host:        a.arch.Host(),
		Incarnation: a.Incarnation(),
		Generation:  gen,
		Manifest:    a.localManifest(),
	}
	return a.sendControl(dep, Event{
		Name: EvGoalAnnounce, Target: DeployerID, Payload: ga, SizeKB: 0.4,
	})
}

// handleGoalDelta applies one goal-state delta: evict components the
// goal no longer assigns here (their buffered traffic is relayed toward
// the relocation hint, or the coordinator when there is none), re-
// instantiate missing ones from the factory registry, prime the bounce
// table with the relocation hints, and acknowledge with the post-apply
// manifest. Application is idempotent — a re-announced resync computes
// an empty delta — and fenced: a stale leader's delta is dropped.
func (a *AdminComponent) handleGoalDelta(gd GoalDelta) {
	if a.cfg.LegacyControl {
		return
	}
	if gd.Host != "" && gd.Host != a.arch.Host() {
		return
	}
	if !a.fenceCheck(gd.Term, gd.Coordinator) {
		return
	}
	host := string(a.arch.Host())
	a.mu.Lock()
	if !gd.Full && gd.FromGen != a.goalGen {
		// A generation-diff delta against a level we are not at cannot be
		// applied safely; drop it and let the next announce trigger a full
		// resync.
		a.mu.Unlock()
		a.arch.Obs().Counter(obs.Name("prism_goal_delta_stale_total", "host", host)).Inc()
		_ = a.AnnounceGoalState()
		return
	}
	a.mu.Unlock()

	reloc := make(map[string]model.HostID, len(gd.Reloc))
	dc := a.arch.DistributionConnector(a.cfg.Bus)
	for _, re := range gd.Reloc {
		reloc[re.Comp] = re.Host
		if dc != nil && re.Host != a.arch.Host() {
			dc.RecordRelocation(re.Comp, re.Host)
		}
	}
	bus := a.arch.Connector(a.cfg.Bus)
	for _, comp := range gd.Remove {
		if a.arch.Component(comp) == nil {
			continue
		}
		if _, err := a.arch.RemoveComponent(comp); err != nil {
			continue
		}
		if dc != nil {
			dc.dropDedup(comp)
		}
		if bus != nil {
			newHost := reloc[comp]
			if newHost == "" || newHost == a.arch.Host() {
				newHost = gd.Coordinator
			}
			a.relayHeld(bus, comp, newHost, gd.Coordinator)
		}
		a.arch.Obs().Counter(obs.Name("prism_goal_evicted_total", "host", host)).Inc()
	}
	for _, gc := range gd.Acquire {
		if a.arch.Component(gc.ID) != nil {
			continue
		}
		comp, err := a.cfg.Registry.New(gc.Type, gc.ID)
		if err != nil {
			a.arch.Obs().Counter(obs.Name("prism_goal_acquire_failed_total", "host", host)).Inc()
			continue
		}
		if err := a.arch.AddComponent(comp); err != nil {
			continue
		}
		if err := a.arch.Weld(gc.ID, a.cfg.Bus); err != nil {
			continue
		}
		a.arch.Obs().Counter(obs.Name("prism_goal_acquired_total", "host", host)).Inc()
	}
	a.mu.Lock()
	if gd.Generation > a.goalGen || gd.Full {
		a.goalGen = gd.Generation
	}
	gen := a.goalGen
	a.mu.Unlock()
	a.arch.Obs().Counter(obs.Name("prism_goal_delta_applied_total", "host", host)).Inc()
	_ = a.sendControl(gd.Coordinator, Event{
		Name:   EvGoalAck,
		Target: DeployerID,
		Payload: GoalAck{
			Host: a.arch.Host(), Generation: gen, Manifest: a.localManifest(),
		},
		SizeKB: 0.3,
	})
}

// noteCommittedGens adopts the generations a committed wave outcome
// published (level semantics: only ever forward).
func (a *AdminComponent) noteCommittedGens(gens map[model.HostID]uint64) {
	if len(gens) == 0 {
		return
	}
	g, ok := gens[a.arch.Host()]
	if !ok {
		return
	}
	a.mu.Lock()
	if g > a.goalGen {
		a.goalGen = g
	}
	a.mu.Unlock()
}
