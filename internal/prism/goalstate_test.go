package prism

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// goalAnnounceCase is a fully populated announce used by the codec-level
// tests below.
func goalAnnounceCase() GoalAnnounce {
	return GoalAnnounce{
		Host: "h7", Incarnation: 3, Generation: 12,
		Manifest: []string{"c1", "c2", "c9"},
	}
}

// TestGoalPayloadVersionGate pins the rolling-upgrade contract of the
// goal-state frame family: frames from a newer major version are
// rejected with a clean error (never misparsed), version zero is
// invalid, unknown ops are rejected, and an extension tail appended by
// a same-version peer is skipped without disturbing the known fields.
func TestGoalPayloadVersionGate(t *testing.T) {
	ga := goalAnnounceCase()
	valid := appendGoalPayload(nil, ga)

	decode := func(data []byte) (any, error) {
		r := &binReader{b: data}
		p, err := decodeGoalPayload(r)
		if err == nil && r.off != len(data) {
			t.Fatalf("decode left %d trailing bytes", len(data)-r.off)
		}
		return p, err
	}

	// The version field is the leading uvarint; at v1 it is one byte.
	if valid[0] != GoalStateVersion {
		t.Fatalf("leading version byte = %d, want %d", valid[0], GoalStateVersion)
	}

	skewed := append([]byte(nil), valid...)
	skewed[0] = 99
	if _, err := decode(skewed); err == nil || !strings.Contains(err.Error(), "unsupported goal-state version") {
		t.Fatalf("version-99 frame: err = %v, want unsupported-version", err)
	}

	zeroed := append([]byte(nil), valid...)
	zeroed[0] = 0
	if _, err := decode(zeroed); err == nil {
		t.Fatal("version-0 frame decoded")
	}

	badOp := append([]byte(nil), valid...)
	badOp[1] = 0x7f
	if _, err := decode(badOp); err == nil || !strings.Contains(err.Error(), "unknown goal-state op") {
		t.Fatalf("unknown-op frame: err = %v, want unknown-op", err)
	}

	// Unknown appended fields: replace the empty extension tail with a
	// three-byte one. A v1 decoder must skip it and still return the
	// announce intact — this is how a same-version peer grows the schema.
	ext := append(append([]byte(nil), valid[:len(valid)-1]...), 3, 0xde, 0xad, 0xbf)
	p, err := decode(ext)
	if err != nil {
		t.Fatalf("extension tail rejected: %v", err)
	}
	got, ok := p.(GoalAnnounce)
	if !ok || got.Host != ga.Host || got.Generation != ga.Generation || len(got.Manifest) != 3 {
		t.Fatalf("extension-tail decode = %+v, want %+v", p, ga)
	}

	// Truncation at every byte boundary errors cleanly, never panics.
	for i := 0; i < len(valid); i++ {
		if _, err := decode(valid[:i]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded", i, len(valid))
		}
	}
}

// TestLegacyGobPreGoalFramesDecode is the version-skew gate: gob frames
// captured before the goal-state fields existed must decode under the
// new schema with the goal fields at their zero values — gob's
// missing-field semantics are what makes the rolling upgrade safe.
func TestLegacyGobPreGoalFramesDecode(t *testing.T) {
	registerPayloadsOnce.Do(registerControlPayloads)
	reconfig, err := os.ReadFile(filepath.Join("testdata", "legacy_reconfig_pregoal.gob"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := decodeEventGob(reconfig)
	if err != nil {
		t.Fatalf("pre-goal reconfig frame rejected: %v", err)
	}
	cmd, ok := e.Payload.(ReconfigCommand)
	if !ok {
		t.Fatalf("payload = %T, want ReconfigCommand", e.Payload)
	}
	if cmd.Epoch != 7 || cmd.Coordinator != "h1" || cmd.Term != 3 || cmd.Arrivals["c1"] != "h2" {
		t.Fatalf("legacy reconfig fields drifted: %+v", cmd)
	}
	if cmd.Gen != 0 {
		t.Fatalf("pre-goal reconfig decoded Gen = %d, want 0", cmd.Gen)
	}

	outcome, err := os.ReadFile(filepath.Join("testdata", "legacy_outcome_pregoal.gob"))
	if err != nil {
		t.Fatal(err)
	}
	e, err = decodeEventGob(outcome)
	if err != nil {
		t.Fatalf("pre-goal outcome frame rejected: %v", err)
	}
	out, ok := e.Payload.(WaveOutcome)
	if !ok {
		t.Fatalf("payload = %T, want WaveOutcome", e.Payload)
	}
	if out.Epoch != 7 || !out.Commit || out.Term != 3 || out.ReplyTo != "h2" {
		t.Fatalf("legacy outcome fields drifted: %+v", out)
	}
	if out.Gens != nil {
		t.Fatalf("pre-goal outcome decoded Gens = %v, want nil", out.Gens)
	}
}

// goalWorld is a deployWorld with an obs registry on every architecture
// so the goal-state counters are readable.
func goalWorld(t *testing.T, hosts ...model.HostID) (*deployWorld, *obs.Registry) {
	t.Helper()
	dw := newDeployWorld(t, 1.0, hosts...)
	reg := obs.NewRegistry()
	for _, h := range hosts {
		dw.archs[h].SetObservability(reg, nil)
	}
	return dw, reg
}

func counterValue(reg *obs.Registry, metric string, host model.HostID) int {
	v, _ := reg.Snapshot().Value(obs.Name(metric, "host", string(host)))
	return int(v)
}

// TestStaleGenerationDeltaDropped pins the stale-generation fence: a
// generation-diff delta whose FromGen does not match the agent's level
// is dropped (not applied, generation untouched) and answered with a
// fresh announce so the next exchange is a full resync.
func TestStaleGenerationDeltaDropped(t *testing.T) {
	dw, reg := goalWorld(t, "m", "s1")
	dw.addCounter(t, "s1", "c1", 5)
	dw.deployer.SeedGoalState(map[model.HostID][]GoalComponent{
		"m": nil, "s1": {{ID: "c1", Type: "counter"}},
	})
	agent := dw.admins["s1"]
	if err := agent.AnnounceGoalState(); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool {
		return agent.GoalGeneration() == 1 && dw.deployer.GoalAcked("s1") == 1
	})

	sentBefore := counterValue(reg, "prism_goal_delta_sent_total", "m")
	agent.handleGoalDelta(GoalDelta{
		Host: "s1", Coordinator: "m", FromGen: 7, Generation: 8,
		Remove: []string{"c1"},
	})
	if got := agent.GoalGeneration(); got != 1 {
		t.Fatalf("stale delta advanced the agent to generation %d", got)
	}
	if dw.archs["s1"].Component("c1") == nil {
		t.Fatal("stale delta evicted a component")
	}
	if got := counterValue(reg, "prism_goal_delta_stale_total", "s1"); got != 1 {
		t.Fatalf("stale counter = %d, want 1", got)
	}
	// The drop re-announces, and the deployer answers with a fresh full
	// delta — the level-triggered recovery from any missed exchange.
	waitForCond(t, func() bool {
		return counterValue(reg, "prism_goal_delta_sent_total", "m") > sentBefore
	})
}

// TestDivergedAnnounceClampedBack pins the deployer side of the fence:
// an agent announcing a generation AHEAD of the goal table (a diverged
// lifetime, or a deployer that lost state) is counted as divergence and
// clamped back to the authoritative goal state, not believed.
func TestDivergedAnnounceClampedBack(t *testing.T) {
	dw, reg := goalWorld(t, "m", "s1")
	dw.addCounter(t, "s1", "c1", 5)
	dw.deployer.SeedGoalState(map[model.HostID][]GoalComponent{
		"m": nil, "s1": {{ID: "c1", Type: "counter"}},
	})
	dw.deployer.handleGoalAnnounce(GoalAnnounce{
		Host: "s1", Generation: 99, Manifest: []string{"c1"},
	})
	if got := counterValue(reg, "prism_goal_divergence_total", "m"); got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
	// The answering delta carries the table's generation, and the agent
	// adopts it: clamped to 1, not left at the diverged 99.
	waitForCond(t, func() bool { return dw.admins["s1"].GoalGeneration() == 1 })
	if acked := dw.deployer.GoalAcked("s1"); acked != 1 {
		t.Fatalf("acked generation = %d, want 1", acked)
	}
}

// TestMixedVersionLegacyAgentDrill is the rolling-upgrade drill: a
// goal-state deployer drives a fleet where one agent is pinned to the
// pre-goal-state control plane (-legacy-control). The legacy agent never
// announces and never receives deltas, yet waves — including ones that
// land components on it — still commit through the classic two-phase
// machinery, and the modern agent converges through the goal stream.
func TestMixedVersionLegacyAgentDrill(t *testing.T) {
	dw, reg := goalWorld(t, "m", "s1", "s2")

	// Re-install s2's admin pinned to the legacy control plane.
	dw.admins["s2"].Close()
	if _, err := dw.archs["s2"].RemoveComponent(AdminID); err != nil {
		t.Fatal(err)
	}
	legacyCfg := AdminConfig{
		Deployer: "m", Bus: "bus", Registry: dw.registry, LegacyControl: true,
	}
	legacy, err := InstallAdmin(dw.archs["s2"], legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	dw.admins["s2"] = legacy
	t.Cleanup(legacy.Close)

	dw.addCounter(t, "s1", "c1", 42)
	dw.addCounter(t, "s2", "c2", 7)
	dw.deployer.SeedGoalState(map[model.HostID][]GoalComponent{
		"m":  nil,
		"s1": {{ID: "c1", Type: "counter"}},
		"s2": {{ID: "c2", Type: "counter"}},
	})

	// The modern agent converges through the goal stream.
	if err := dw.admins["s1"].AnnounceGoalState(); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool { return dw.deployer.GoalAcked("s1") == 1 })

	// The legacy agent opts out silently: announce is a no-op, nothing
	// is ever acked for it.
	if err := legacy.AnnounceGoalState(); err != nil {
		t.Fatalf("legacy announce must be a silent no-op, got %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := dw.deployer.GoalAcked("s2"); got != 0 {
		t.Fatalf("legacy agent acked generation %d", got)
	}
	if got := counterValue(reg, "prism_goal_delta_applied_total", "s2"); got != 0 {
		t.Fatalf("legacy agent applied %d goal deltas", got)
	}

	// A wave landing a component ON the legacy host still commits via
	// the classic two-phase path, state intact.
	res, err := dw.deployer.Enact(
		map[string]model.HostID{"c1": "s2"},
		map[string]model.HostID{"c1": "s1", "c2": "s2"},
		10*time.Second,
	)
	if err != nil || !res.Committed {
		t.Fatalf("mixed-version wave = %+v err=%v, want committed", res, err)
	}
	waitForCond(t, func() bool {
		c := dw.archs["s2"].Component("c1")
		return c != nil && dw.archs["s1"].Component("c1") == nil
	})
	if got := dw.archs["s2"].Component("c1").(*counterComponent).value(); got != 42 {
		t.Fatalf("migrated counter = %d, want 42", got)
	}
	// The deployer's goal table followed the wave even though the legacy
	// destination never speaks the goal protocol.
	if got := strings.Join(dw.deployer.GoalManifest("s2"), ","); got != "c1,c2" {
		t.Fatalf("goal manifest for legacy host = %q, want c1,c2", got)
	}
}
