package prism

import (
	"math"
	"sort"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// HealthScorer tracks a per-peer health score in [0, 1] from the
// signals a gray failure leaves behind even when heartbeats look fine:
// control-send outcomes (report requests answered or not, observable
// send errors), retry pressure (two-phase re-dispatches and outcome
// re-broadcasts toward a still-pending host), and heartbeat
// inter-arrival regularity. The score feeds the HostDegraded overlay in
// the failure detector — a limping host is steered around without being
// falsely declared dead (DSN'04's unreliable-link regime; the
// constraint-based management line's "adapt to degraded resources").
//
// score = SendWeight·ewma(outcomes) + (1−SendWeight)·regularity where
// regularity = mean/(mean+σ) over the recent heartbeat inter-arrival
// window (1.0 until two intervals exist). Degradation is hysteretic:
// below DegradeBelow flips a peer to degraded, and only climbing back
// above RecoverAbove clears it.
type HealthScorer struct {
	cfg HealthConfig

	mu    sync.Mutex
	peers map[model.HostID]*peerHealth
}

// HealthConfig tunes the scorer. The zero value gets usable defaults
// via withDefaults.
type HealthConfig struct {
	// Alpha is the EWMA smoothing factor for send outcomes (default 0.3).
	Alpha float64
	// SendWeight weights the send-outcome EWMA against heartbeat
	// regularity in the blended score (default 0.7).
	SendWeight float64
	// DegradeBelow / RecoverAbove bound the hysteresis band (defaults
	// 0.5 and 0.8).
	DegradeBelow float64
	RecoverAbove float64
	// Window is how many heartbeat inter-arrivals feed the regularity
	// term (default 16).
	Window int
	// Host labels the exported gauges; Obs receives
	// prism_peer_health_score{host=...,peer=...}.
	Host model.HostID
	Obs  *obs.Registry
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.SendWeight <= 0 || c.SendWeight > 1 {
		c.SendWeight = 0.7
	}
	if c.DegradeBelow <= 0 {
		c.DegradeBelow = 0.5
	}
	if c.RecoverAbove <= 0 {
		c.RecoverAbove = 0.8
	}
	if c.RecoverAbove < c.DegradeBelow {
		c.RecoverAbove = c.DegradeBelow
	}
	if c.Window <= 1 {
		c.Window = 16
	}
	return c
}

type peerHealth struct {
	ewma      float64
	haveEwma  bool
	lastHB    time.Time
	haveHB    bool
	intervals []time.Duration // ring buffer, newest at write cursor
	next      int
	filled    int
	degraded  bool
	gauge     *obs.Gauge
}

// PeerHealth is one peer's scored state, as returned by Snapshot.
type PeerHealth struct {
	Peer     model.HostID
	Score    float64
	Degraded bool
}

// NewHealthScorer builds a scorer with cfg (zero-value fields get
// defaults).
func NewHealthScorer(cfg HealthConfig) *HealthScorer {
	return &HealthScorer{cfg: cfg.withDefaults(), peers: make(map[model.HostID]*peerHealth)}
}

func (h *HealthScorer) peer(id model.HostID) *peerHealth {
	p, ok := h.peers[id]
	if !ok {
		p = &peerHealth{
			ewma:      1,
			intervals: make([]time.Duration, h.cfg.Window),
			gauge: h.cfg.Obs.Gauge(obs.Name("prism_peer_health_score",
				"host", string(h.cfg.Host), "peer", string(id))),
		}
		h.peers[id] = p
	}
	return p
}

// RecordSend folds one control-send outcome toward peer into the EWMA:
// ok=true for an answered request or clean send, ok=false for an
// observable failure or an unanswered report request.
func (h *HealthScorer) RecordSend(peer model.HostID, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(peer)
	v := 0.0
	if ok {
		v = 1.0
	}
	if !p.haveEwma {
		p.ewma, p.haveEwma = v, true
	} else {
		p.ewma = (1-h.cfg.Alpha)*p.ewma + h.cfg.Alpha*v
	}
	p.gauge.Set(h.scoreLocked(p))
}

// RecordRetry folds one retry toward peer — a two-phase re-dispatch or
// outcome re-broadcast means the previous attempt did not land, so it
// counts as a failed outcome.
func (h *HealthScorer) RecordRetry(peer model.HostID) {
	h.RecordSend(peer, false)
}

// RecordHeartbeat folds one heartbeat arrival time into the peer's
// inter-arrival window.
func (h *HealthScorer) RecordHeartbeat(peer model.HostID, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(peer)
	if p.haveHB {
		iv := at.Sub(p.lastHB)
		if iv > 0 {
			p.intervals[p.next] = iv
			p.next = (p.next + 1) % len(p.intervals)
			if p.filled < len(p.intervals) {
				p.filled++
			}
		}
	}
	p.lastHB, p.haveHB = at, true
	p.gauge.Set(h.scoreLocked(p))
}

// scoreLocked blends the send EWMA with heartbeat regularity. Callers
// hold h.mu.
func (h *HealthScorer) scoreLocked(p *peerHealth) float64 {
	return h.cfg.SendWeight*p.ewma + (1-h.cfg.SendWeight)*h.regularityLocked(p)
}

func (h *HealthScorer) regularityLocked(p *peerHealth) float64 {
	if p.filled < 2 {
		return 1
	}
	var sum float64
	for i := 0; i < p.filled; i++ {
		sum += float64(p.intervals[i])
	}
	mean := sum / float64(p.filled)
	var varSum float64
	for i := 0; i < p.filled; i++ {
		d := float64(p.intervals[i]) - mean
		varSum += d * d
	}
	sigma := math.Sqrt(varSum / float64(p.filled))
	if mean+sigma == 0 {
		return 1
	}
	return mean / (mean + sigma)
}

// Score returns peer's current blended score (1.0 for an unknown peer).
func (h *HealthScorer) Score(peer model.HostID) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[peer]
	if !ok {
		return 1
	}
	return h.scoreLocked(p)
}

// Evaluate applies the hysteresis band to every tracked peer and
// returns the peers whose degraded flag flipped this call, sorted by
// ID: Degraded=true for a newly limping peer, false for a recovered
// one. The scorer remembers the flag, so steady state returns nothing.
func (h *HealthScorer) Evaluate() []PeerHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []PeerHealth
	for id, p := range h.peers {
		s := h.scoreLocked(p)
		switch {
		case !p.degraded && s < h.cfg.DegradeBelow:
			p.degraded = true
			out = append(out, PeerHealth{Peer: id, Score: s, Degraded: true})
		case p.degraded && s > h.cfg.RecoverAbove:
			p.degraded = false
			out = append(out, PeerHealth{Peer: id, Score: s, Degraded: false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Snapshot returns every tracked peer's current state, sorted by ID.
func (h *HealthScorer) Snapshot() []PeerHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerHealth, 0, len(h.peers))
	for id, p := range h.peers {
		out = append(out, PeerHealth{Peer: id, Score: h.scoreLocked(p), Degraded: p.degraded})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Forget drops a peer's state entirely (a host that died and was
// excised should not carry stale health into a rejoin).
func (h *HealthScorer) Forget(peer model.HostID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, peer)
}
