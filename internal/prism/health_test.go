package prism

import (
	"testing"
	"time"

	"dif/internal/obs"
)

func TestHealthScorerDegradeAndRecover(t *testing.T) {
	h := NewHealthScorer(HealthConfig{})
	// Steady success: score pinned at 1, nothing flips.
	for i := 0; i < 10; i++ {
		h.RecordSend("p", true)
	}
	if got := h.Score("p"); got != 1 {
		t.Fatalf("score after clean streak = %v, want 1", got)
	}
	if tr := h.Evaluate(); len(tr) != 0 {
		t.Fatalf("clean peer produced transitions: %v", tr)
	}

	// Sustained 60% failure drives the EWMA toward 0.4 → below the 0.5
	// degrade threshold once blended (regularity term stays 1 with no
	// heartbeat history, so score → 0.7·0.4 + 0.3·1 = 0.58... not below).
	// Use full failure to cross the band decisively.
	for i := 0; i < 20; i++ {
		h.RecordSend("p", false)
	}
	tr := h.Evaluate()
	if len(tr) != 1 || tr[0].Peer != "p" || !tr[0].Degraded {
		t.Fatalf("failing peer transitions = %v, want p degraded", tr)
	}
	// Hysteresis: a single success must not bounce it back.
	h.RecordSend("p", true)
	if tr := h.Evaluate(); len(tr) != 0 {
		t.Fatalf("one success cleared degraded: %v", tr)
	}
	// A sustained clean streak recovers it.
	for i := 0; i < 30; i++ {
		h.RecordSend("p", true)
	}
	tr = h.Evaluate()
	if len(tr) != 1 || tr[0].Degraded {
		t.Fatalf("recovered peer transitions = %v, want p recovered", tr)
	}
}

func TestHealthScorerRetryCountsAsFailure(t *testing.T) {
	h := NewHealthScorer(HealthConfig{})
	for i := 0; i < 20; i++ {
		h.RecordRetry("p")
	}
	if s := h.Score("p"); s > 0.5 {
		t.Fatalf("score after pure retries = %v, want below degrade band", s)
	}
}

func TestHealthScorerHeartbeatJitter(t *testing.T) {
	h := NewHealthScorer(HealthConfig{})
	base := time.Unix(0, 0)
	// Perfectly regular heartbeats → regularity 1, score stays 1.
	at := base
	for i := 0; i < 10; i++ {
		at = at.Add(100 * time.Millisecond)
		h.RecordHeartbeat("steady", at)
	}
	if s := h.Score("steady"); s != 1 {
		t.Fatalf("steady heartbeat score = %v, want 1", s)
	}
	// Wildly jittered heartbeats drag the regularity term down even
	// with a clean send record.
	at = base
	ivs := []time.Duration{10 * time.Millisecond, 900 * time.Millisecond,
		5 * time.Millisecond, 1200 * time.Millisecond, 15 * time.Millisecond,
		800 * time.Millisecond, 20 * time.Millisecond, 1100 * time.Millisecond}
	for _, iv := range ivs {
		at = at.Add(iv)
		h.RecordHeartbeat("jittery", at)
	}
	if s := h.Score("jittery"); s >= 0.95 {
		t.Fatalf("jittery heartbeat score = %v, want visibly below 1", s)
	}
	if hs, js := h.Score("steady"), h.Score("jittery"); js >= hs {
		t.Fatalf("jittery (%v) should score below steady (%v)", js, hs)
	}
}

func TestHealthScorerGauge(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHealthScorer(HealthConfig{Host: "h1", Obs: reg})
	for i := 0; i < 10; i++ {
		h.RecordSend("h2", false)
	}
	snap := reg.Snapshot()
	v, ok := snap.Value(obs.Name("prism_peer_health_score", "host", "h1", "peer", "h2"))
	if !ok {
		t.Fatal("prism_peer_health_score gauge missing")
	}
	if v >= 0.5 {
		t.Fatalf("gauge = %v, want degraded-range score", v)
	}
}

func TestHealthScorerForget(t *testing.T) {
	h := NewHealthScorer(HealthConfig{})
	for i := 0; i < 20; i++ {
		h.RecordSend("p", false)
	}
	h.Evaluate()
	h.Forget("p")
	if s := h.Score("p"); s != 1 {
		t.Fatalf("forgotten peer score = %v, want fresh 1", s)
	}
	if snap := h.Snapshot(); len(snap) != 0 {
		t.Fatalf("forgotten peer still tracked: %v", snap)
	}
}
