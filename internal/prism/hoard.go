package prism

import (
	"sync"

	"dif/internal/model"
)

// Store-and-forward support (DSN'04 §6 names "queuing of remote calls"
// as a redeployment-complementing strategy; the disconnected-operation
// work the paper builds on uses the same mechanism). When enabled on a
// DistributionConnector, application events that fail to reach a peer —
// the link is partitioned, dropped the message, or does not currently
// exist — are queued per peer and re-sent when the caller flushes after
// connectivity returns.

// pendingQueue buffers undeliverable frames for one peer.
type pendingQueue struct {
	frames []pendingFrame
}

type pendingFrame struct {
	data   []byte
	sizeKB float64
}

// storeAndForward is the DistributionConnector extension state.
type storeAndForward struct {
	mu         sync.Mutex
	enabled    bool
	maxPerPeer int
	dropped    int
	queues     map[model.HostID]*pendingQueue
}

// DefaultStoreAndForwardDepth bounds each peer's queue.
const DefaultStoreAndForwardDepth = 256

// EnableStoreAndForward turns on queuing of undeliverable application
// events toward each peer. maxPerPeer bounds each queue (0 selects
// DefaultStoreAndForwardDepth); when full, the oldest frame is dropped.
func (dc *DistributionConnector) EnableStoreAndForward(maxPerPeer int) {
	if maxPerPeer <= 0 {
		maxPerPeer = DefaultStoreAndForwardDepth
	}
	dc.saf.mu.Lock()
	defer dc.saf.mu.Unlock()
	dc.saf.enabled = true
	dc.saf.maxPerPeer = maxPerPeer
	if dc.saf.queues == nil {
		dc.saf.queues = make(map[model.HostID]*pendingQueue)
	}
}

// DisableStoreAndForward turns queuing off and discards pending frames.
func (dc *DistributionConnector) DisableStoreAndForward() {
	dc.saf.mu.Lock()
	defer dc.saf.mu.Unlock()
	dc.saf.enabled = false
	dc.saf.queues = nil
}

// queuePending stores an undeliverable frame (connector-internal).
func (dc *DistributionConnector) queuePending(peer model.HostID, data []byte, sizeKB float64) {
	dc.saf.mu.Lock()
	defer dc.saf.mu.Unlock()
	if !dc.saf.enabled {
		return
	}
	q, ok := dc.saf.queues[peer]
	if !ok {
		q = &pendingQueue{}
		dc.saf.queues[peer] = q
	}
	if len(q.frames) >= dc.saf.maxPerPeer {
		// Drop the oldest: fresher state supersedes stale events.
		q.frames = q.frames[1:]
		dc.saf.dropped++
	}
	// Own a copy: callers may hand us a pooled encode buffer that is
	// recycled as soon as the failed Send returns.
	q.frames = append(q.frames, pendingFrame{data: append([]byte(nil), data...), sizeKB: sizeKB})
}

// PendingFor returns how many events are queued toward a peer.
func (dc *DistributionConnector) PendingFor(peer model.HostID) int {
	dc.saf.mu.Lock()
	defer dc.saf.mu.Unlock()
	if q, ok := dc.saf.queues[peer]; ok {
		return len(q.frames)
	}
	return 0
}

// PendingDropped returns how many queued events were displaced by queue
// overflow since store-and-forward was enabled.
func (dc *DistributionConnector) PendingDropped() int {
	dc.saf.mu.Lock()
	defer dc.saf.mu.Unlock()
	return dc.saf.dropped
}

// FlushPeer re-sends the events queued toward a peer (call when
// connectivity is restored, e.g. after a successful reliability probe).
// Frames that still fail are re-queued in order. It returns how many
// were delivered and how many remain queued.
func (dc *DistributionConnector) FlushPeer(peer model.HostID) (delivered, remaining int) {
	dc.saf.mu.Lock()
	q, ok := dc.saf.queues[peer]
	if !ok || len(q.frames) == 0 {
		dc.saf.mu.Unlock()
		return 0, 0
	}
	frames := q.frames
	q.frames = nil
	dc.saf.mu.Unlock()

	var failed []pendingFrame
	for i, f := range frames {
		if len(failed) > 0 {
			// Preserve ordering: once one frame fails, stop trying and
			// re-queue the rest behind it.
			failed = append(failed, frames[i])
			continue
		}
		if err := dc.transport.Send(peer, f.data, f.sizeKB); err != nil {
			failed = append(failed, f)
			continue
		}
		delivered++
	}
	if len(failed) > 0 {
		dc.saf.mu.Lock()
		if dc.saf.enabled {
			q, ok := dc.saf.queues[peer]
			if !ok {
				q = &pendingQueue{}
				dc.saf.queues[peer] = q
			}
			// Failed frames go back to the front; anything queued while
			// we were flushing stays behind them.
			q.frames = append(failed, q.frames...)
			remaining = len(q.frames)
		}
		dc.saf.mu.Unlock()
	}
	return delivered, remaining
}

// FlushAll flushes every peer with queued events and returns the total
// delivered.
func (dc *DistributionConnector) FlushAll() int {
	dc.saf.mu.Lock()
	peers := make([]model.HostID, 0, len(dc.saf.queues))
	for p, q := range dc.saf.queues {
		if len(q.frames) > 0 {
			peers = append(peers, p)
		}
	}
	dc.saf.mu.Unlock()
	total := 0
	for _, p := range peers {
		n, _ := dc.FlushPeer(p)
		total += n
	}
	return total
}
