package prism

import (
	"testing"
	"time"

	"dif/internal/model"
)

func TestStoreAndForwardQueuesOnPartition(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	w.buses["h1"].EnableStoreAndForward(0)

	if err := w.fabric.SetPartitioned("h1", "h2", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Emit(Event{Name: "x", Target: "b"})
	}
	time.Sleep(20 * time.Millisecond)
	if b.count.Load() != 0 {
		t.Fatal("events crossed a partition")
	}
	if got := w.buses["h1"].PendingFor("h2"); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}

	// Heal and flush: everything arrives.
	if err := w.fabric.SetPartitioned("h1", "h2", false); err != nil {
		t.Fatal(err)
	}
	delivered, remaining := w.buses["h1"].FlushPeer("h2")
	if delivered != 5 || remaining != 0 {
		t.Fatalf("flush = %d delivered, %d remaining", delivered, remaining)
	}
	waitFor(t, func() bool { return b.count.Load() == 5 })
}

func TestStoreAndForwardLossyFlushRequeues(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2")
	a := w.addEcho(t, "h1", "a")
	_ = w.addEcho(t, "h2", "b")
	bus := w.buses["h1"]
	bus.EnableStoreAndForward(0)
	if err := w.fabric.SetPartitioned("h1", "h2", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a.Emit(Event{Name: "x", Target: "b"})
	}
	// Flush while still partitioned: nothing delivered, order preserved.
	delivered, remaining := bus.FlushPeer("h2")
	if delivered != 0 || remaining != 3 {
		t.Fatalf("partitioned flush = %d/%d", delivered, remaining)
	}
}

func TestStoreAndForwardDepthBound(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2")
	a := w.addEcho(t, "h1", "a")
	_ = w.addEcho(t, "h2", "b")
	bus := w.buses["h1"]
	bus.EnableStoreAndForward(3)
	if err := w.fabric.SetPartitioned("h1", "h2", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Emit(Event{Name: "x", Target: "b"})
	}
	if got := bus.PendingFor("h2"); got != 3 {
		t.Fatalf("pending = %d, want bound 3", got)
	}
	if got := bus.PendingDropped(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
}

func TestStoreAndForwardDisabledByDefault(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2")
	a := w.addEcho(t, "h1", "a")
	_ = w.addEcho(t, "h2", "b")
	if err := w.fabric.SetPartitioned("h1", "h2", true); err != nil {
		t.Fatal(err)
	}
	a.Emit(Event{Name: "x", Target: "b"})
	if got := w.buses["h1"].PendingFor("h2"); got != 0 {
		t.Fatalf("pending = %d without store-and-forward", got)
	}
}

func TestStoreAndForwardFlushAll(t *testing.T) {
	w := newWorld(t, 1.0, "h1", "h2", "h3")
	a := w.addEcho(t, "h1", "a")
	b := w.addEcho(t, "h2", "b")
	c := w.addEcho(t, "h3", "c")
	bus := w.buses["h1"]
	bus.EnableStoreAndForward(0)
	for _, peer := range []string{"h2", "h3"} {
		if err := w.fabric.SetPartitioned("h1", model.HostID(peer), true); err != nil {
			t.Fatal(err)
		}
	}
	a.Emit(Event{Name: "x", Target: "b", DstHost: "h2"})
	a.Emit(Event{Name: "x", Target: "c", DstHost: "h3"})
	for _, peer := range []string{"h2", "h3"} {
		if err := w.fabric.SetPartitioned("h1", model.HostID(peer), false); err != nil {
			t.Fatal(err)
		}
	}
	if total := bus.FlushAll(); total != 2 {
		t.Fatalf("FlushAll = %d, want 2", total)
	}
	waitFor(t, func() bool { return b.count.Load() == 1 && c.count.Load() == 1 })
	// Disable discards any future queuing.
	bus.DisableStoreAndForward()
	if got := bus.PendingFor("h2"); got != 0 {
		t.Fatalf("pending after disable = %d", got)
	}
}
