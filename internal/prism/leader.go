package prism

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
	"dif/internal/store"
)

// Deployer high availability: N deployers run simultaneously, exactly
// one active. Leadership is an agent-quorum lease — a candidate
// broadcasts a LeaseRequest carrying a monotonic fencing term to every
// agent admin and leads once a majority grants it. The term is stamped
// on every control frame the leader originates; agents reject frames
// from stale terms, so a paused-then-revived old leader cannot corrupt
// a wave (no split brain by construction: two leaders would need two
// majorities at the same term, and an agent grants a term once).
//
// The leader streams its durable checkpoint records to standbys, which
// apply them to their own local WAL; on lease expiry a standby
// campaigns, bumps the term, and runs the existing Resume() path —
// decided epochs are driven to commit, undecided ones aborted, never
// replanned and never renumbered.
const (
	EvLeaseRequest = "admin.leaseRequest"
	EvLeaseGrant   = "admin.leaseGrant"
	EvReplicate    = "admin.replicate"
	EvReplicateAck = "admin.replicateAck"
)

// LeaseRequest asks an agent to grant (or renew) this candidate's
// leadership lease at the given fencing term.
type LeaseRequest struct {
	Candidate model.HostID
	Term      uint64
	TTL       time.Duration
	// Renewal marks periodic extension of a lease already held, for the
	// renewal/rejection metric split; the grant rule does not depend on it.
	Renewal bool
}

// LeaseGrant is an agent's vote. A rejection carries the agent's
// current fence term, so a stale candidate (or a deposed leader
// receiving the fencing feedback an admin sends when it rejects a
// stale control frame) learns the term it must exceed.
type LeaseGrant struct {
	Host    model.HostID // the granting (or rejecting) agent
	Term    uint64
	Granted bool
}

// ReplRecord is one replicated checkpoint record (a WAL entry).
type ReplRecord struct {
	Kind byte
	Data []byte
}

// ReplBatch streams a run of checkpoint records from the leader to a
// standby. Seq numbers the first record; Reset marks a batch that
// starts at the leader's base (a full live-state sync): the standby
// replaces its WAL with exactly this prefix. An empty batch is a
// leader heartbeat for the standby's leader watch.
type ReplBatch struct {
	Leader  model.HostID
	Term    uint64
	Seq     uint64
	Reset   bool
	Records []ReplRecord
}

// ReplAck reports how far a standby has applied the leader's stream;
// the leader retransmits the unacknowledged suffix.
type ReplAck struct {
	Host    model.HostID
	Term    uint64
	Applied uint64
}

func registerLeaderPayloads() {
	gob.Register(LeaseRequest{})
	gob.Register(LeaseGrant{})
	gob.Register(ReplBatch{})
	gob.Register(ReplAck{})
}

// ErrNoQuorum marks a campaign that timed out before a strict majority
// of agents granted the lease. It is retryable: a standby keeps
// shadowing and campaigns again when its leader watch next fires.
var ErrNoQuorum = errors.New("prism: campaign timed out without an agent quorum")

// ErrNotLeader rejects wave-driving calls on a deployer that has not
// won (or has lost) the leadership lease.
var ErrNotLeader = errors.New("prism: deployer is not the leader")

// Leadership defaults.
const (
	DefaultLeaseTTL        = 2 * time.Second
	DefaultCampaignTimeout = 4 * time.Second
)

// LeaderConfig configures a deployer's participation in the leadership
// protocol.
type LeaderConfig struct {
	// Agents are the voting hosts (every host running an AdminComponent,
	// this one included). A lease needs a strict majority of them.
	Agents []model.HostID
	// Peers are the other deployer hosts — the replication targets.
	Peers []model.HostID
	// LeaseTTL bounds how long a grant fences out higher terms; zero
	// selects the default.
	LeaseTTL time.Duration
	// CampaignTimeout bounds one Campaign call, which keeps
	// re-broadcasting the same term until quorum or timeout (so lease
	// expiry during the campaign is absorbed without burning terms).
	// Zero selects the default.
	CampaignTimeout time.Duration
	// RebroadcastInterval paces the campaign re-broadcast and is also the
	// natural cadence for ReplicationTick in live binaries. Zero selects
	// the admin layer's EnactResendInterval.
	RebroadcastInterval time.Duration
	// Watch is the standby-side leader failure detector policy; nil
	// selects a LeasePolicy scaled to the lease TTL. The detector runs
	// on Clock.
	Watch SuspicionPolicy
	// Clock supplies every time read (lease arithmetic, watch
	// observations); nil inherits the deployer's AdminConfig clock.
	Clock func() time.Time
}

func (c LeaderConfig) withDefaults(adminClock func() time.Time, resend time.Duration) LeaderConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = DefaultCampaignTimeout
	}
	if c.RebroadcastInterval <= 0 {
		c.RebroadcastInterval = resend
	}
	if c.Clock == nil {
		c.Clock = adminClock
	}
	if c.Watch == nil {
		c.Watch = NewLeasePolicy(2*c.LeaseTTL, 4*c.LeaseTTL)
	}
	return c
}

// Leadership is a deployer's view of the election and replication
// state: its current fencing term, whether it leads, the leader-side
// replication log, and the standby-side leader watch.
type Leadership struct {
	dep *DeployerComponent
	cfg LeaderConfig

	mu      sync.Mutex
	term    uint64
	leading bool
	leader  model.HostID // last known leader (self while leading)
	// campaignTerm/grants/grantCh are live only during a Campaign call.
	campaignTerm uint64
	grants       map[model.HostID]bool
	grantCh      chan struct{}

	// Leader-side replication: records since the last leadership reset,
	// 1-based sequence numbers, per-peer acked high-water marks.
	replLog []ReplRecord
	acked   map[model.HostID]uint64

	// inflight guards the async lease broadcasts: at most one frame per
	// agent rides the retrying sender at a time, so a crashed agent's
	// slow retry chain neither stalls the campaign loop nor piles up
	// goroutines under the rebroadcast ticker.
	inflight map[model.HostID]bool

	// watch is the standby-side leader failure detector (term doubles as
	// the incarnation, so a new leader at a higher term "resurrects" the
	// watched identity).
	watch *FailureDetector
}

// AttachLeadership wires the deployer into the leadership protocol. The
// fencing term persisted in the durable snapshot (if a store is
// attached) is restored, and the store's append stream is tapped for
// replication. Call before the first Campaign.
func (d *DeployerComponent) AttachLeadership(cfg LeaderConfig) (*Leadership, error) {
	registerLeaderPayloadsOnce.Do(registerLeaderPayloads)
	cfg = cfg.withDefaults(d.cfg.Clock, d.cfg.EnactResendInterval)
	if len(cfg.Agents) == 0 {
		return nil, fmt.Errorf("prism: leadership needs a non-empty agent set")
	}
	le := &Leadership{
		dep:      d,
		cfg:      cfg,
		acked:    make(map[model.HostID]uint64),
		inflight: make(map[model.HostID]bool),
		watch:    NewFailureDetector(cfg.Watch),
	}
	le.watch.SetClock(cfg.Clock)
	// Restore the persisted term before publishing le: once d.leadership
	// is visible, delivery goroutines read le.term under le.mu, and this
	// constructor must not keep writing it behind their back.
	d.mu.Lock()
	ds := d.store
	d.mu.Unlock()
	if ds != nil {
		le.term = ds.Term()
	}
	le.setTermGauge(le.term)
	d.mu.Lock()
	d.leadership = le
	d.mu.Unlock()
	if ds != nil {
		ds.SetReplicator(le.enqueue, le.flush)
	}
	return le, nil
}

// Leadership returns the attached leadership state (nil when the
// deployer runs solo, the legacy single-deployer mode).
func (d *DeployerComponent) Leadership() *Leadership {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.leadership
}

// deposed reports whether this deployer participates in leadership but
// does not currently hold it — the fencing condition for its own wave
// traffic. A solo deployer is never deposed.
func (d *DeployerComponent) deposed() bool {
	d.mu.Lock()
	le := d.leadership
	d.mu.Unlock()
	if le == nil {
		return false
	}
	return !le.IsLeader()
}

// term returns the fencing term stamped on outgoing control frames
// (zero — the unfenced legacy value — without leadership).
func (d *DeployerComponent) term() uint64 {
	d.mu.Lock()
	le := d.leadership
	d.mu.Unlock()
	if le == nil {
		return 0
	}
	return le.Term()
}

// Term returns the highest fencing term this deployer has seen.
func (le *Leadership) Term() uint64 {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.term
}

// IsLeader reports whether this deployer currently holds the lease.
func (le *Leadership) IsLeader() bool {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.leading
}

// Leader returns the last known leader host ("" before any is known).
func (le *Leadership) Leader() model.HostID {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.leader
}

func (le *Leadership) setTermGauge(term uint64) {
	le.dep.arch.Obs().Gauge(obs.Name("prism_leader_term",
		"host", string(le.dep.arch.Host()))).Set(float64(term))
}

func (le *Leadership) transitionMetric() {
	le.dep.arch.Obs().Counter(obs.Name("prism_leader_transitions_total",
		"host", string(le.dep.arch.Host()))).Inc()
}

// quorum is the strict majority of the agent set.
func (le *Leadership) quorum() int { return len(le.cfg.Agents)/2 + 1 }

// Campaign runs one election round: it bumps the term past everything
// seen, persists it, and re-broadcasts the lease request at that SAME
// term until a majority of agents grant it or the timeout expires —
// agents whose previous lease has not yet expired reject at first and
// grant a later re-broadcast, without this candidate burning another
// term (keeping term numbers deterministic in seeded drills: one bump
// per leadership change). Returns whether the campaign won.
func (le *Leadership) Campaign() (bool, error) {
	sp := le.dep.arch.Tracer().Start("campaign")
	defer sp.End()
	return le.campaign(sp)
}

func (le *Leadership) campaign(sp *obs.Span) (bool, error) {
	d := le.dep
	le.mu.Lock()
	if le.leading {
		le.mu.Unlock()
		sp.SetAttr("term", le.Term()).SetAttr("outcome", "already_leading")
		return true, nil
	}
	le.term++
	term := le.term
	le.campaignTerm = term
	le.grants = make(map[model.HostID]bool, len(le.cfg.Agents))
	le.grantCh = make(chan struct{}, 1)
	le.mu.Unlock()
	sp.SetAttr("term", term)
	le.persistTerm(term)
	le.setTermGauge(term)

	req := Event{
		Name: EvLeaseRequest, Target: AdminID, SizeKB: 0.2,
		Payload: LeaseRequest{Candidate: d.arch.Host(), Term: term, TTL: le.cfg.LeaseTTL},
	}
	agents := append([]model.HostID(nil), le.cfg.Agents...)
	sortHostIDs(agents)
	broadcast := func() {
		for _, h := range agents {
			le.mu.Lock()
			voted := le.grants[h]
			le.mu.Unlock()
			if voted {
				continue
			}
			le.sendLeaseAsync(h, req)
		}
	}
	broadcast()
	deadline := time.NewTimer(le.cfg.CampaignTimeout)
	defer deadline.Stop()
	resend := time.NewTicker(le.cfg.RebroadcastInterval)
	defer resend.Stop()
	for {
		le.mu.Lock()
		if le.term != term {
			// A higher term appeared mid-campaign: someone else won a later
			// election. Stand down.
			le.campaignTerm = 0
			le.mu.Unlock()
			sp.SetAttr("outcome", "superseded")
			return false, nil
		}
		if len(le.grants) >= le.quorum() {
			le.leading = true
			le.leader = d.arch.Host()
			le.campaignTerm = 0
			le.resetReplLocked()
			le.mu.Unlock()
			le.transitionMetric()
			sp.SetAttr("outcome", "won").SetAttr("grants", len(agents))
			// Adopt the replicated epoch high-water mark: records ingested
			// while standing by advanced the store past the counter
			// AttachStore restored, and a resumed wave must never renumber.
			d.mu.Lock()
			if ds := d.store; ds != nil {
				if ne := ds.NextEpoch(); ne > d.nextEpoch {
					d.nextEpoch = ne
				}
			}
			d.mu.Unlock()
			// Prime the freshly won replication state toward every peer so
			// standbys converge without waiting for the first wave.
			le.flush()
			return true, nil
		}
		le.mu.Unlock()
		select {
		case <-le.grantCh:
		case <-resend.C:
			broadcast()
		case <-deadline.C:
			le.mu.Lock()
			le.campaignTerm = 0
			le.mu.Unlock()
			sp.SetAttr("outcome", "timeout")
			return false, fmt.Errorf("campaign for term %d: %w", term, ErrNoQuorum)
		case <-d.stop:
			le.mu.Lock()
			le.campaignTerm = 0
			le.mu.Unlock()
			sp.SetAttr("outcome", "closed")
			return false, fmt.Errorf("prism: deployer closed mid-campaign")
		}
	}
}

// Renew re-broadcasts the current lease at the held term (agents extend
// their expiry for the same holder). Only meaningful while leading.
func (le *Leadership) Renew() {
	le.mu.Lock()
	leading, term := le.leading, le.term
	le.mu.Unlock()
	if !leading {
		return
	}
	d := le.dep
	req := Event{
		Name: EvLeaseRequest, Target: AdminID, SizeKB: 0.2,
		Payload: LeaseRequest{Candidate: d.arch.Host(), Term: term, TTL: le.cfg.LeaseTTL, Renewal: true},
	}
	agents := append([]model.HostID(nil), le.cfg.Agents...)
	sortHostIDs(agents)
	for _, h := range agents {
		le.sendLeaseAsync(h, req)
	}
}

// sendLeaseAsync dispatches one lease frame off the caller's goroutine.
// Sends to an unreachable agent sit in the control sender's retry loop
// for a while; a quorum must never wait behind them, and the campaign's
// rebroadcast ticker supplies the retransmission, so at most one frame
// per agent is kept in flight.
func (le *Leadership) sendLeaseAsync(h model.HostID, ev Event) {
	le.mu.Lock()
	if le.inflight[h] {
		le.mu.Unlock()
		return
	}
	le.inflight[h] = true
	le.mu.Unlock()
	go func() {
		_ = le.dep.sendControl(h, ev)
		le.mu.Lock()
		delete(le.inflight, h)
		le.mu.Unlock()
	}()
}

// Failover is the standby's promotion path: campaign, and on victory
// run the deployer's existing Resume — decided epochs re-announce their
// persisted outcome, undecided ones abort, with the original epoch
// numbers. The span subtree (failover → campaign/resume) is the
// drill-visible trace of a leadership change.
func (le *Leadership) Failover() ([]ResumedWave, bool, error) {
	sp := le.dep.arch.Tracer().Start("failover")
	defer sp.End()
	csp := sp.Child("campaign")
	won, err := le.campaign(csp)
	csp.End()
	if !won {
		sp.SetAttr("outcome", "lost")
		return nil, false, err
	}
	rsp := sp.Child("resume")
	waves, rerr := le.dep.Resume()
	rsp.SetAttr("waves", len(waves))
	rsp.End()
	sp.SetAttr("outcome", "leading").SetAttr("term", le.Term())
	return waves, true, rerr
}

// LeaderSuspect reports whether the standby-side watch currently
// declares the known leader suspect or dead at the given time — the
// campaign trigger. A host that is itself leading never suspects.
func (le *Leadership) LeaderSuspect(now time.Time) bool {
	le.mu.Lock()
	leader, leading := le.leader, le.leading
	le.mu.Unlock()
	if leading || leader == "" {
		return false
	}
	le.watch.EvaluateAt(now)
	st := le.watch.State(leader)
	return st == HostSuspect || st == HostDead
}

// persistTerm records the fencing term durably (best-effort: a lost
// term is re-learned from the first frame that carries a higher one).
func (le *Leadership) persistTerm(term uint64) {
	le.dep.mu.Lock()
	ds := le.dep.store
	le.dep.mu.Unlock()
	if ds != nil {
		_ = ds.SaveTerm(term)
	}
}

// observe folds an incoming term into the leadership state (Paxos-style
// term learning): a higher term always wins, and a leader seeing one is
// deposed — its in-flight sends die via the sender's fence check.
func (le *Leadership) observe(term uint64, from model.HostID) {
	le.mu.Lock()
	if term <= le.term {
		if term == le.term && from != "" {
			le.leader = from
		}
		le.mu.Unlock()
		return
	}
	le.term = term
	wasLeading := le.leading
	le.leading = false
	if from != "" {
		le.leader = from
	}
	if le.campaignTerm != 0 {
		// Wake a pending campaign so it notices it was superseded.
		select {
		case le.grantCh <- struct{}{}:
		default:
		}
	}
	le.mu.Unlock()
	// A new term means a new leader with a freshly rebuilt replication
	// log: its stream restarts at seq 1, so the high-water mark from the
	// old term must not make Ingest skip the new Reset batch as covered.
	le.dep.mu.Lock()
	ds := le.dep.store
	le.dep.mu.Unlock()
	if ds != nil {
		ds.ResetReplProgress()
	}
	le.persistTerm(term)
	le.setTermGauge(term)
	if wasLeading {
		le.transitionMetric()
	}
}

// onGrant processes an agent's vote (or the fencing feedback an admin
// sends a stale coordinator).
func (le *Leadership) onGrant(g LeaseGrant) {
	if !g.Granted {
		le.observe(g.Term, "")
		return
	}
	le.mu.Lock()
	if g.Term == le.campaignTerm && le.campaignTerm != 0 {
		le.grants[g.Host] = true
		select {
		case le.grantCh <- struct{}{}:
		default:
		}
	}
	le.mu.Unlock()
}

// --- Leader-side replication -------------------------------------------

// resetReplLocked rebuilds the replication log from the store's live
// state: the stream a new leadership session offers its standbys starts
// with a full prefix (Reset batch), so a standby in any prior state
// converges. Caller holds le.mu.
func (le *Leadership) resetReplLocked() {
	le.replLog = nil
	le.acked = make(map[model.HostID]uint64, len(le.cfg.Peers))
	le.dep.mu.Lock()
	ds := le.dep.store
	le.dep.mu.Unlock()
	if ds == nil {
		return
	}
	for _, r := range ds.LiveRecords() {
		le.replLog = append(le.replLog, ReplRecord{Kind: r.Kind, Data: r.Data})
	}
}

// enqueue appends one checkpoint record to the replication log. It runs
// under the store's mutex (ordering matches the WAL exactly); the
// send happens in flush.
func (le *Leadership) enqueue(kind byte, data []byte) {
	le.mu.Lock()
	if le.leading {
		le.replLog = append(le.replLog, ReplRecord{Kind: kind, Data: data})
	}
	le.mu.Unlock()
}

// flush streams each peer's unacknowledged suffix. Invoked after every
// WAL append — strictly before any armed crash hook runs, so a record
// that became durable on the leader is offered to standbys before the
// leader can die of it — and from ReplicationTick for retransmission.
func (le *Leadership) flush() {
	le.mu.Lock()
	if !le.leading {
		le.mu.Unlock()
		return
	}
	term := le.term
	type out struct {
		peer  model.HostID
		batch ReplBatch
	}
	var outs []out
	peers := append([]model.HostID(nil), le.cfg.Peers...)
	sortHostIDs(peers)
	for _, p := range peers {
		start := le.acked[p] + 1
		if start < 1 {
			start = 1
		}
		var recs []ReplRecord
		if int(start) <= len(le.replLog) {
			recs = append([]ReplRecord(nil), le.replLog[start-1:]...)
		} else {
			start = uint64(len(le.replLog)) + 1 // empty batch: leader heartbeat
		}
		outs = append(outs, out{peer: p, batch: ReplBatch{
			Leader: le.dep.arch.Host(), Term: term, Seq: start,
			Reset: start == 1, Records: recs,
		}})
	}
	le.mu.Unlock()
	for _, o := range outs {
		_ = le.dep.sendControl(o.peer, Event{
			Name: EvReplicate, Target: DeployerID, Payload: o.batch,
			SizeKB: 0.3 + float64(len(o.batch.Records))*0.2,
		})
	}
}

// ReplicationTick retransmits every peer's unacknowledged suffix (or an
// empty heartbeat batch once a peer is caught up, feeding its leader
// watch). Drive it periodically while leading.
func (le *Leadership) ReplicationTick() { le.flush() }

// Synced reports whether the given peer has acknowledged the entire
// replication log (drills gate leader-kill on a converged standby).
func (le *Leadership) Synced(peer model.HostID) bool {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.leading && le.acked[peer] >= uint64(len(le.replLog))
}

// onReplicate is the standby side: adopt the term, observe the leader
// for the watch, ingest the batch idempotently, and ack how far the
// local WAL has applied.
func (le *Leadership) onReplicate(b ReplBatch) {
	le.mu.Lock()
	stale := b.Term < le.term
	le.mu.Unlock()
	if stale {
		// A deposed leader is still streaming: tell it the world moved on.
		_ = le.dep.sendControl(b.Leader, Event{
			Name: EvReplicateAck, Target: DeployerID, SizeKB: 0.2,
			Payload: ReplAck{Host: le.dep.arch.Host(), Term: le.Term(), Applied: 0},
		})
		return
	}
	le.observe(b.Term, b.Leader)
	le.watch.ObserveAt(b.Leader, b.Term, le.cfg.Clock())
	le.dep.mu.Lock()
	ds := le.dep.store
	le.dep.mu.Unlock()
	var applied uint64
	if ds != nil {
		recs := make([]store.Record, len(b.Records))
		for i, r := range b.Records {
			recs[i] = store.Record{Kind: r.Kind, Data: r.Data}
		}
		applied, _ = ds.Ingest(b.Seq, b.Reset, recs)
	}
	_ = le.dep.sendControl(b.Leader, Event{
		Name: EvReplicateAck, Target: DeployerID, SizeKB: 0.2,
		Payload: ReplAck{Host: le.dep.arch.Host(), Term: b.Term, Applied: applied},
	})
}

// onReplicateAck advances a peer's acked high-water mark (leader side),
// or deposes us when the ack carries a higher term.
func (le *Leadership) onReplicateAck(a ReplAck) {
	le.mu.Lock()
	if a.Term > le.term {
		le.mu.Unlock()
		le.observe(a.Term, "")
		return
	}
	if le.leading && a.Term == le.term && a.Applied > le.acked[a.Host] {
		le.acked[a.Host] = a.Applied
	}
	le.mu.Unlock()
}

var registerLeaderPayloadsOnce sync.Once
