package prism

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/store"
)

// testClock is a hand-advanced clock for lease arithmetic.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// haWorld is a deployWorld whose first two hosts each run a deployer
// with leadership attached (h1 boots as leader, h2 as warm standby).
type haWorld struct {
	*deployWorld
	clk     *testClock
	standby *DeployerComponent
	leadA   *Leadership // hosts[0]'s leadership
	leadB   *Leadership // hosts[1]'s leadership
	dirs    map[model.HostID]string
	stores  map[model.HostID]*DeployerStore
}

func newHAWorld(t *testing.T, hosts ...model.HostID) *haWorld {
	t.Helper()
	w := newWorld(t, 1.0, hosts...)
	clk := newTestClock()
	dw := &deployWorld{
		world:    w,
		admins:   make(map[model.HostID]*AdminComponent),
		registry: NewFactoryRegistry(),
		master:   hosts[0],
	}
	dw.registry.Register("counter", func(id string) Migratable { return newCounter(id) })
	cfg := AdminConfig{Deployer: dw.master, Bus: "bus", Registry: dw.registry, Clock: clk.Now}
	for _, h := range hosts {
		admin, err := InstallAdmin(w.archs[h], cfg)
		if err != nil {
			t.Fatal(err)
		}
		dw.admins[h] = admin
	}
	ha := &haWorld{
		deployWorld: dw,
		clk:         clk,
		dirs:        make(map[model.HostID]string),
		stores:      make(map[model.HostID]*DeployerStore),
	}
	lcfg := LeaderConfig{
		Agents: hosts, Clock: clk.Now,
		RebroadcastInterval: 20 * time.Millisecond,
		CampaignTimeout:     5 * time.Second,
	}
	for i, h := range hosts[:2] {
		dep, err := InstallDeployer(w.archs[h], cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		ds, err := OpenDeployerStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		if err := dep.AttachStore(ds); err != nil {
			t.Fatal(err)
		}
		c := lcfg
		c.Peers = []model.HostID{hosts[1-i]}
		le, err := dep.AttachLeadership(c)
		if err != nil {
			t.Fatal(err)
		}
		ha.dirs[h] = dir
		ha.stores[h] = ds
		if i == 0 {
			dw.deployer, ha.leadA = dep, le
		} else {
			ha.standby, ha.leadB = dep, le
		}
	}
	return ha
}

// TestLeaseGrantRule exercises the agent-side vote table directly: one
// candidate per term ever, renewals only for the holder, expiry gating
// takeovers, and everything below the fence rejected.
func TestLeaseGrantRule(t *testing.T) {
	ha := newHAWorld(t, "h1", "h2", "h3")
	a := ha.admins["h3"]
	ttl := 2 * time.Second

	a.handleLeaseRequest(LeaseRequest{Candidate: "h1", Term: 1, TTL: ttl})
	if got := a.FenceTerm(); got != 1 {
		t.Fatalf("fence after first grant = %d, want 1", got)
	}
	// Same term, different candidate: the term is already spent.
	a.handleLeaseRequest(LeaseRequest{Candidate: "h2", Term: 1, TTL: ttl})
	if got := a.LeaseGrants()[1]; got != "h1" {
		t.Fatalf("term 1 granted to %q, want h1", got)
	}
	// Holder renewal extends the same term.
	a.handleLeaseRequest(LeaseRequest{Candidate: "h1", Term: 1, TTL: ttl, Renewal: true})
	// Higher term before the lease expires, different candidate: rejected.
	a.handleLeaseRequest(LeaseRequest{Candidate: "h2", Term: 2, TTL: ttl})
	if got := a.FenceTerm(); got != 1 {
		t.Fatalf("fence after premature takeover bid = %d, want 1", got)
	}
	// After expiry the same bid wins, and the old holder's terms are dead.
	ha.clk.Advance(3 * ttl)
	a.handleLeaseRequest(LeaseRequest{Candidate: "h2", Term: 2, TTL: ttl})
	if got := a.FenceTerm(); got != 2 {
		t.Fatalf("fence after takeover = %d, want 2", got)
	}
	a.handleLeaseRequest(LeaseRequest{Candidate: "h1", Term: 1, TTL: ttl})
	if got := a.FenceTerm(); got != 2 {
		t.Fatalf("fence moved backwards: %d", got)
	}
	grants := a.LeaseGrants()
	if grants[1] != "h1" || grants[2] != "h2" {
		t.Fatalf("grant log = %v, want 1→h1 2→h2", grants)
	}
}

// TestCampaignWinsQuorum is the happy-path election: the first candidate
// reaches every agent, wins term 1, and renewals keep the lease alive.
func TestCampaignWinsQuorum(t *testing.T) {
	ha := newHAWorld(t, "h1", "h2", "h3")
	won, err := ha.leadA.Campaign()
	if err != nil || !won {
		t.Fatalf("campaign: won=%v err=%v", won, err)
	}
	if !ha.leadA.IsLeader() || ha.leadA.Term() != 1 {
		t.Fatalf("leader state: leading=%v term=%d", ha.leadA.IsLeader(), ha.leadA.Term())
	}
	waitFor(t, func() bool {
		for _, h := range []model.HostID{"h1", "h2", "h3"} {
			if ha.admins[h].FenceTerm() != 1 {
				return false
			}
		}
		return true
	})
	for _, h := range []model.HostID{"h1", "h2", "h3"} {
		if got := ha.admins[h].LeaseGrants()[1]; got != "h1" {
			t.Fatalf("agent %s granted term 1 to %q", h, got)
		}
	}
	// The winning term is durable: a restart of this deployer re-learns it
	// from its own snapshot instead of reusing a spent term.
	if got := ha.stores["h1"].Term(); got != 1 {
		t.Fatalf("persisted term = %d, want 1", got)
	}
	// The standby deployer refuses to drive waves.
	if _, err := ha.standby.Enact(nil, nil, time.Second); err != ErrNotLeader {
		t.Fatalf("standby Enact err = %v, want ErrNotLeader", err)
	}
}

// TestStaleTermOutcomeFencedByEveryParticipant is the split-brain drill
// at the frame level: once agents acknowledge a higher term, a
// WaveOutcome stamped with an older term is dropped by every participant
// — no rollback, no ack — and the fencing feedback deposes its sender.
func TestStaleTermOutcomeFencedByEveryParticipant(t *testing.T) {
	ha := newHAWorld(t, "h1", "h2", "h3")
	won, err := ha.leadA.Campaign()
	if err != nil || !won {
		t.Fatalf("campaign: won=%v err=%v", won, err)
	}
	// The world moves on: h2 takes the lease at term 2 after expiry.
	ha.clk.Advance(time.Minute)
	for _, h := range []model.HostID{"h1", "h2", "h3"} {
		ha.admins[h].handleLeaseRequest(LeaseRequest{Candidate: "h2", Term: 2, TTL: 2 * time.Second})
		if got := ha.admins[h].FenceTerm(); got != 2 {
			t.Fatalf("agent %s fence = %d, want 2", h, got)
		}
	}
	// The deposed-but-unaware h1 broadcasts an abort at its old term.
	stale := Event{
		Name: EvOutcome, Kind: KindControl, Target: AdminID, SizeKB: 0.3,
		Payload: WaveOutcome{Epoch: 9, Coordinator: "h1", Commit: false, Term: 1, ReplyTo: "h1"},
	}
	for _, h := range []model.HostID{"h1", "h2", "h3"} {
		ha.admins[h].Handle(stale)
	}
	ck := epochKey("h1", 9)
	for _, h := range []model.HostID{"h1", "h2", "h3"} {
		a := ha.admins[h]
		a.mu.Lock()
		applied := a.aborted[ck]
		a.mu.Unlock()
		if applied {
			t.Fatalf("agent %s applied a stale-term outcome", h)
		}
	}
	// The rejection's fencing feedback reaches h1's deployer: it adopts
	// term 2 and deposes itself.
	waitFor(t, func() bool { return ha.deployer.deposed() && ha.leadA.Term() == 2 })
	// The same frame at the live term is honored (and acked) everywhere.
	live := stale
	live.Payload = WaveOutcome{Epoch: 9, Coordinator: "h1", Commit: false, Term: 2, ReplyTo: "h2"}
	for _, h := range []model.HostID{"h1", "h2", "h3"} {
		ha.admins[h].Handle(live)
		a := ha.admins[h]
		a.mu.Lock()
		applied := a.aborted[ck]
		a.mu.Unlock()
		if !applied {
			t.Fatalf("agent %s dropped a live-term outcome", h)
		}
	}
}

// replayWAL re-opens a closed store directory and returns the raw WAL
// bytes — the byte-identity witness for replication idempotency.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// leaderStream runs two epochs against a leader store with the
// replication tap installed and returns the enqueued record stream.
func leaderStream(t *testing.T, ds *DeployerStore) []store.Record {
	t.Helper()
	var stream []store.Record
	ds.SetReplicator(func(kind byte, data []byte) {
		stream = append(stream, store.Record{Kind: kind, Data: data})
	}, func() {})
	moves := map[string]model.HostID{"c1": "h2"}
	parts := []model.HostID{"h1", "h2"}
	for epoch := 1; epoch <= 2; epoch++ {
		if err := ds.epochOpened(epoch, moves, parts, "h1"); err != nil {
			t.Fatal(err)
		}
		if err := ds.epochPrepared(epoch); err != nil {
			t.Fatal(err)
		}
		if err := ds.epochDecided(epoch, epoch%2 == 1); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 2 stays open (decided, unclosed) — the shape a failover
	// resumes. Epoch 1 closes.
	if err := ds.epochClosed(1); err != nil {
		t.Fatal(err)
	}
	return stream
}

// TestReplicationIngestIdempotent feeds the same leader stream to three
// standbys — once cleanly, once with every batch duplicated, once with
// out-of-order redelivery — and requires byte-identical WALs and mirrors.
func TestReplicationIngestIdempotent(t *testing.T) {
	leaderDir := t.TempDir()
	lds, err := OpenDeployerStore(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	defer lds.Close()
	stream := leaderStream(t, lds)
	if len(stream) < 5 {
		t.Fatalf("leader stream too short: %d records", len(stream))
	}

	open := func() (*DeployerStore, string) {
		dir := t.TempDir()
		ds, err := OpenDeployerStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return ds, dir
	}
	clean, cleanDir := open()
	dup, dupDir := open()
	ooo, oooDir := open()

	// Clean: one Reset batch with the whole stream.
	if n, err := clean.Ingest(1, true, stream); err != nil || n != uint64(len(stream)) {
		t.Fatalf("clean ingest: n=%d err=%v", n, err)
	}

	// Duplicated: every batch delivered twice, split into two halves.
	half := len(stream) / 2
	for i := 0; i < 2; i++ {
		if _, err := dup.Ingest(1, true, stream[:half]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := dup.Ingest(uint64(half)+1, false, stream[half:]); err != nil {
			t.Fatal(err)
		}
	}

	// Out of order: the tail arrives first (gap → ignored), then the
	// Reset prefix, then an overlapping suffix that is already covered,
	// then the tail again.
	if n, err := ooo.Ingest(uint64(half)+1, false, stream[half:]); err != nil || n != 0 {
		t.Fatalf("gap batch: n=%d err=%v, want ignored", n, err)
	}
	if _, err := ooo.Ingest(1, true, stream[:half]); err != nil {
		t.Fatal(err)
	}
	if n, err := ooo.Ingest(2, false, stream[1:half]); err != nil || n != uint64(half) {
		t.Fatalf("covered overlap: n=%d err=%v", n, err)
	}
	if _, err := ooo.Ingest(uint64(half)+1, false, stream[half:]); err != nil {
		t.Fatal(err)
	}

	for _, ds := range []*DeployerStore{clean, dup, ooo} {
		if got := ds.ReplProgress(); got != uint64(len(stream)) {
			t.Fatalf("repl progress = %d, want %d", got, len(stream))
		}
		if ne := ds.NextEpoch(); ne != 3 {
			t.Fatalf("mirror next epoch = %d, want 3", ne)
		}
		waves := ds.OpenWaves()
		if len(waves) != 1 || waves[0].Epoch != 2 || waves[0].Decided {
			if len(waves) != 1 || waves[0].Epoch != 2 {
				t.Fatalf("mirror open waves = %+v", waves)
			}
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
	}
	want := walBytes(t, cleanDir)
	if got := walBytes(t, dupDir); string(got) != string(want) {
		t.Fatalf("duplicated delivery diverged: %d bytes vs %d", len(got), len(want))
	}
	if got := walBytes(t, oooDir); string(got) != string(want) {
		t.Fatalf("out-of-order delivery diverged: %d bytes vs %d", len(got), len(want))
	}
}

// TestReplicationStreamsToStandby is the live-wire version: a leader
// wins the lease, moves a component through a real two-phase wave, and
// the standby's store converges to the leader's live state through the
// EvReplicate/EvReplicateAck exchange alone.
func TestReplicationStreamsToStandby(t *testing.T) {
	ha := newHAWorld(t, "h1", "h2", "h3")
	ha.addCounter(t, "h2", "c1", 3)
	won, err := ha.leadA.Campaign()
	if err != nil || !won {
		t.Fatalf("campaign: won=%v err=%v", won, err)
	}
	res, err := ha.deployer.Enact(
		map[string]model.HostID{"c1": "h3"},
		map[string]model.HostID{"c1": "h2"},
		5*time.Second,
	)
	if err != nil || !res.Committed {
		t.Fatalf("wave: res=%+v err=%v", res, err)
	}
	waitFor(t, func() bool { return ha.leadB.Term() == 1 && ha.leadA.Synced("h2") })
	sb := ha.stores["h2"]
	if ne := sb.NextEpoch(); ne != 2 {
		t.Fatalf("standby next epoch = %d, want 2", ne)
	}
	if got := sb.Term(); got != 1 {
		t.Fatalf("standby persisted term = %d, want 1", got)
	}
}
