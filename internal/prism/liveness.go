// Liveness layer: admins and the deployer exchange heartbeats over the
// existing Transport, and a pluggable suspicion policy turns heartbeat
// silence into HostUp → HostSuspect → HostDead transitions. The paper's
// motivating scenario is hosts *disappearing* (PDAs dropping off the
// network); this layer is what lets the framework notice and replan
// instead of wedging.
//
// Every decision is driven by explicit timestamps (an injected clock),
// never by wall-clock sleeps, so whole-stack crash drills are seeded and
// deterministic. Rejoin is incarnation-gated: a host declared dead is
// only resurrected by a heartbeat carrying a strictly greater incarnation
// number, so replayed or delayed frames from the dead incarnation can
// never mask a crash.
package prism

import (
	"math"
	"sort"
	"sync"
	"time"

	"dif/internal/model"
)

// EvHeartbeat is the control-plane liveness beacon admins send to the
// deployer host.
const EvHeartbeat = "admin.heartbeat"

// Heartbeat is the liveness beacon payload. Components carries the
// sender's current component manifest so a rejoining host resyncs its
// inventory in the same message that resurrects it.
type Heartbeat struct {
	Host        model.HostID
	Incarnation uint64
	Seq         uint64
	Components  []string
}

// HostState is a host's liveness state as seen by a FailureDetector.
type HostState int

// Liveness states. Unknown hosts have never been watched or heard from.
// HostDegraded sits between Up and Suspect: the host is limping — its
// heartbeats still arrive, but the health scorer sees gray-failure
// signals (one-way loss, retry pressure, jitter) — so the planner
// steers new placements away without the detector ever declaring it
// dead. The suspicion policies never emit Degraded themselves; it is an
// overlay driven by MarkDegraded.
const (
	HostUnknown HostState = iota
	HostUp
	HostDegraded
	HostSuspect
	HostDead
)

// String returns the state name.
func (s HostState) String() string {
	switch s {
	case HostUp:
		return "up"
	case HostDegraded:
		return "degraded"
	case HostSuspect:
		return "suspect"
	case HostDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Transition is one published liveness state change.
type Transition struct {
	Host        model.HostID
	From, To    HostState
	Incarnation uint64
	At          time.Time
}

// SuspicionPolicy turns a host's heartbeat arrival history into a
// liveness assessment. Implementations need not be goroutine-safe; the
// FailureDetector serializes access.
type SuspicionPolicy interface {
	Name() string
	// Observe records a heartbeat arrival.
	Observe(host model.HostID, at time.Time)
	// Assess judges the host's state at the given instant.
	Assess(host model.HostID, now time.Time) HostState
	// Forget clears the host's history (crash or rejoin resets it).
	Forget(host model.HostID)
}

// LeasePolicy is the fixed-timeout suspicion policy: a host is suspected
// after SuspectAfter without a heartbeat and declared dead after
// DeadAfter.
type LeasePolicy struct {
	SuspectAfter time.Duration
	DeadAfter    time.Duration

	last map[model.HostID]time.Time
}

// Default lease windows: suspect after two missed 1s heartbeats, dead
// after five.
const (
	DefaultSuspectAfter = 2 * time.Second
	DefaultDeadAfter    = 5 * time.Second
)

// NewLeasePolicy returns a lease policy; zero durations select defaults.
func NewLeasePolicy(suspectAfter, deadAfter time.Duration) *LeasePolicy {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if deadAfter <= 0 {
		deadAfter = DefaultDeadAfter
	}
	return &LeasePolicy{
		SuspectAfter: suspectAfter,
		DeadAfter:    deadAfter,
		last:         make(map[model.HostID]time.Time),
	}
}

// Name implements SuspicionPolicy.
func (*LeasePolicy) Name() string { return "lease" }

// Observe implements SuspicionPolicy.
func (p *LeasePolicy) Observe(host model.HostID, at time.Time) {
	if prev, ok := p.last[host]; !ok || at.After(prev) {
		p.last[host] = at
	}
}

// Assess implements SuspicionPolicy.
func (p *LeasePolicy) Assess(host model.HostID, now time.Time) HostState {
	last, ok := p.last[host]
	if !ok {
		return HostUnknown
	}
	elapsed := now.Sub(last)
	switch {
	case elapsed >= p.DeadAfter:
		return HostDead
	case elapsed >= p.SuspectAfter:
		return HostSuspect
	default:
		return HostUp
	}
}

// Forget implements SuspicionPolicy.
func (p *LeasePolicy) Forget(host model.HostID) { delete(p.last, host) }

// PhiAccrualPolicy is a phi-accrual-style adaptive detector: it keeps a
// window of heartbeat inter-arrival times per host and computes the
// suspicion level φ = -log10(P(no heartbeat for this long)) under a
// normal approximation of the observed inter-arrival distribution. Hosts
// with jittery heartbeat delivery earn wider tolerance automatically.
type PhiAccrualPolicy struct {
	// SuspectPhi and DeadPhi are the φ thresholds for the two downgrades.
	SuspectPhi float64
	DeadPhi    float64
	// MinStdDev floors the inter-arrival standard deviation so a host
	// with metronomic heartbeats is not declared dead microseconds late.
	MinStdDev time.Duration
	// WindowSize bounds the per-host inter-arrival history.
	WindowSize int
	// Bootstrap is the assumed mean inter-arrival before two heartbeats
	// have been seen.
	Bootstrap time.Duration

	hist map[model.HostID]*arrivalWindow
}

type arrivalWindow struct {
	last      time.Time
	hasLast   bool
	intervals []float64 // seconds, ring-buffered
	next      int
	filled    bool
}

// Phi-accrual defaults: the conventional φ=8 death threshold with an
// earlier φ=3 suspicion level.
const (
	DefaultSuspectPhi = 3.0
	DefaultDeadPhi    = 8.0
	DefaultPhiWindow  = 100
)

// NewPhiAccrualPolicy returns an adaptive policy; zero values select the
// defaults.
func NewPhiAccrualPolicy(suspectPhi, deadPhi float64) *PhiAccrualPolicy {
	if suspectPhi <= 0 {
		suspectPhi = DefaultSuspectPhi
	}
	if deadPhi <= 0 {
		deadPhi = DefaultDeadPhi
	}
	return &PhiAccrualPolicy{
		SuspectPhi: suspectPhi,
		DeadPhi:    deadPhi,
		MinStdDev:  50 * time.Millisecond,
		WindowSize: DefaultPhiWindow,
		Bootstrap:  time.Second,
		hist:       make(map[model.HostID]*arrivalWindow),
	}
}

// Name implements SuspicionPolicy.
func (*PhiAccrualPolicy) Name() string { return "phi" }

// Observe implements SuspicionPolicy.
func (p *PhiAccrualPolicy) Observe(host model.HostID, at time.Time) {
	w, ok := p.hist[host]
	if !ok {
		w = &arrivalWindow{intervals: make([]float64, p.WindowSize)}
		p.hist[host] = w
	}
	if w.hasLast {
		iv := at.Sub(w.last).Seconds()
		if iv <= 0 {
			return // replayed or reordered frame: no new information
		}
		w.intervals[w.next] = iv
		w.next++
		if w.next == len(w.intervals) {
			w.next = 0
			w.filled = true
		}
	}
	w.last = at
	w.hasLast = true
}

// Phi returns the host's current suspicion level.
func (p *PhiAccrualPolicy) Phi(host model.HostID, now time.Time) float64 {
	w, ok := p.hist[host]
	if !ok || !w.hasLast {
		return 0
	}
	mean, std := w.moments(p.Bootstrap.Seconds())
	if min := p.MinStdDev.Seconds(); std < min {
		std = min
	}
	t := now.Sub(w.last).Seconds()
	if t <= 0 {
		return 0
	}
	// P(interval > t) under N(mean, std²) via the complementary error
	// function; φ = -log10 of that survival probability.
	surv := 0.5 * math.Erfc((t-mean)/(std*math.Sqrt2))
	if surv < 1e-300 {
		surv = 1e-300
	}
	return -math.Log10(surv)
}

func (w *arrivalWindow) moments(bootstrap float64) (mean, std float64) {
	n := w.next
	if w.filled {
		n = len(w.intervals)
	}
	if n == 0 {
		return bootstrap, bootstrap / 4
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w.intervals[i]
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, mean / 4
	}
	varsum := 0.0
	for i := 0; i < n; i++ {
		d := w.intervals[i] - mean
		varsum += d * d
	}
	return mean, math.Sqrt(varsum / float64(n))
}

// Assess implements SuspicionPolicy.
func (p *PhiAccrualPolicy) Assess(host model.HostID, now time.Time) HostState {
	w, ok := p.hist[host]
	if !ok || !w.hasLast {
		return HostUnknown
	}
	phi := p.Phi(host, now)
	switch {
	case phi >= p.DeadPhi:
		return HostDead
	case phi >= p.SuspectPhi:
		return HostSuspect
	default:
		return HostUp
	}
}

// Forget implements SuspicionPolicy.
func (p *PhiAccrualPolicy) Forget(host model.HostID) { delete(p.hist, host) }

// FailureDetector is the deployer-side liveness state machine: it folds
// heartbeat observations through a SuspicionPolicy into per-host states,
// publishes transitions to subscribers, and gates rejoin on incarnation
// numbers. All methods are safe for concurrent use. Time always arrives
// as an argument or through the injected clock — the detector itself
// never sleeps.
type FailureDetector struct {
	mu       sync.Mutex
	policy   SuspicionPolicy
	now      func() time.Time
	states   map[model.HostID]HostState
	incs     map[model.HostID]uint64
	manifest map[model.HostID][]string
	subs     []func(Transition)
}

// NewFailureDetector returns a detector over the policy (nil selects a
// default LeasePolicy).
func NewFailureDetector(policy SuspicionPolicy) *FailureDetector {
	if policy == nil {
		policy = NewLeasePolicy(0, 0)
	}
	return &FailureDetector{
		policy:   policy,
		now:      time.Now,
		states:   make(map[model.HostID]HostState),
		incs:     make(map[model.HostID]uint64),
		manifest: make(map[model.HostID][]string),
	}
}

// SetClock injects the detector's time source (tests and drills).
func (fd *FailureDetector) SetClock(now func() time.Time) {
	fd.mu.Lock()
	fd.now = now
	fd.mu.Unlock()
}

// Subscribe registers a callback invoked (outside the detector's lock)
// for every published transition.
func (fd *FailureDetector) Subscribe(fn func(Transition)) {
	fd.mu.Lock()
	fd.subs = append(fd.subs, fn)
	fd.mu.Unlock()
}

// Watch registers a host as expected-alive at the given instant, so its
// silence is noticed even if it never heartbeats.
func (fd *FailureDetector) Watch(host model.HostID, at time.Time) {
	fd.mu.Lock()
	if _, ok := fd.states[host]; !ok {
		fd.states[host] = HostUp
	}
	fd.policy.Observe(host, at)
	fd.mu.Unlock()
}

// Observe feeds a heartbeat using the injected clock for the arrival
// time and returns any transitions it caused.
func (fd *FailureDetector) Observe(host model.HostID, incarnation uint64) []Transition {
	fd.mu.Lock()
	at := fd.now()
	fd.mu.Unlock()
	return fd.ObserveAt(host, incarnation, at)
}

// ObserveAt feeds a heartbeat with an explicit arrival time. A heartbeat
// from a dead host resurrects it only when its incarnation is strictly
// greater than the one that died; equal-or-lower incarnations are
// replayed frames from the dead lifetime and are ignored.
func (fd *FailureDetector) ObserveAt(host model.HostID, incarnation uint64, at time.Time) []Transition {
	fd.mu.Lock()
	prev := fd.states[host]
	var trans []Transition
	switch prev {
	case HostDead:
		if incarnation <= fd.incs[host] {
			fd.mu.Unlock()
			return nil // stale heartbeat from the dead incarnation
		}
		fd.policy.Forget(host)
		fd.policy.Observe(host, at)
		fd.states[host] = HostUp
		fd.incs[host] = incarnation
		trans = append(trans, Transition{Host: host, From: HostDead, To: HostUp, Incarnation: incarnation, At: at})
	default:
		if incarnation > fd.incs[host] {
			fd.incs[host] = incarnation
		}
		fd.policy.Observe(host, at)
		// A degraded host's heartbeats keep arriving by definition —
		// the observation refreshes the policy but the Degraded overlay
		// stays until the health scorer clears it via MarkDegraded.
		if prev != HostUp && prev != HostDegraded {
			fd.states[host] = HostUp
			if prev == HostSuspect {
				trans = append(trans, Transition{Host: host, From: HostSuspect, To: HostUp, Incarnation: fd.incs[host], At: at})
			}
		}
	}
	subs := append([]func(Transition){}, fd.subs...)
	fd.mu.Unlock()
	publish(subs, trans)
	return trans
}

// Evaluate re-assesses every watched host at the injected clock's current
// time.
func (fd *FailureDetector) Evaluate() []Transition {
	fd.mu.Lock()
	at := fd.now()
	fd.mu.Unlock()
	return fd.EvaluateAt(at)
}

// EvaluateAt re-assesses every watched host at the given instant and
// returns (and publishes) the transitions, in sorted host order. Dead
// hosts stay dead until an incarnation-bumped heartbeat resurrects them.
func (fd *FailureDetector) EvaluateAt(now time.Time) []Transition {
	fd.mu.Lock()
	hosts := make([]model.HostID, 0, len(fd.states))
	for h := range fd.states {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	var trans []Transition
	for _, h := range hosts {
		prev := fd.states[h]
		if prev == HostDead {
			continue
		}
		next := fd.policy.Assess(h, now)
		if next == HostUnknown || next == prev {
			continue
		}
		// The policy only knows Up/Suspect/Dead. While a host is
		// Degraded, a healthy assessment keeps the overlay (recovery
		// belongs to the health scorer); an unhealthy one — heartbeats
		// actually stopped — escalates past it normally.
		if prev == HostDegraded && next == HostUp {
			continue
		}
		fd.states[h] = next
		trans = append(trans, Transition{Host: h, From: prev, To: next, Incarnation: fd.incs[h], At: now})
	}
	subs := append([]func(Transition){}, fd.subs...)
	fd.mu.Unlock()
	publish(subs, trans)
	return trans
}

func publish(subs []func(Transition), trans []Transition) {
	for _, tr := range trans {
		for _, fn := range subs {
			fn(tr)
		}
	}
}

// State returns a host's current liveness state.
func (fd *FailureDetector) State(host model.HostID) HostState {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.states[host]
}

// Incarnation returns the highest incarnation observed for the host.
func (fd *FailureDetector) Incarnation(host model.HostID) uint64 {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.incs[host]
}

// Incarnations returns a copy of the full incarnation map — the
// deployer's durable checkpoint of which lifetimes it has seen.
func (fd *FailureDetector) Incarnations() map[model.HostID]uint64 {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	out := make(map[model.HostID]uint64, len(fd.incs))
	for h, inc := range fd.incs {
		out[h] = inc
	}
	return out
}

// PrimeIncarnation seeds the incarnation floor for a host without any
// state transition: a restarted deployer restores its checkpointed map
// here, so replayed frames from lifetimes that died before the crash
// stay ignored.
func (fd *FailureDetector) PrimeIncarnation(host model.HostID, inc uint64) {
	fd.mu.Lock()
	if inc > fd.incs[host] {
		fd.incs[host] = inc
	}
	fd.mu.Unlock()
}

// MarkDegraded sets (on=true) or clears (on=false) the Degraded overlay
// for a host at the given instant, publishing the transition. The
// overlay only attaches to an Up host — a Suspect, Dead, or Unknown
// host keeps its stronger state — and only a Degraded host can be
// cleared back to Up. Returns the transitions it caused.
func (fd *FailureDetector) MarkDegraded(host model.HostID, on bool, at time.Time) []Transition {
	fd.mu.Lock()
	prev := fd.states[host]
	var trans []Transition
	switch {
	case on && prev == HostUp:
		fd.states[host] = HostDegraded
		trans = append(trans, Transition{Host: host, From: HostUp, To: HostDegraded, Incarnation: fd.incs[host], At: at})
	case !on && prev == HostDegraded:
		fd.states[host] = HostUp
		trans = append(trans, Transition{Host: host, From: HostDegraded, To: HostUp, Incarnation: fd.incs[host], At: at})
	}
	subs := append([]func(Transition){}, fd.subs...)
	fd.mu.Unlock()
	publish(subs, trans)
	return trans
}

// DegradedHosts returns every host currently carrying the Degraded
// overlay, sorted.
func (fd *FailureDetector) DegradedHosts() []model.HostID {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	var out []model.HostID
	for h, st := range fd.states {
		if st == HostDegraded {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeadHosts returns every host currently declared dead, sorted.
func (fd *FailureDetector) DeadHosts() []model.HostID {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	var out []model.HostID
	for h, st := range fd.states {
		if st == HostDead {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetManifest records a host's last-reported component manifest (sent
// with each heartbeat, so a rejoining host resyncs in one message).
func (fd *FailureDetector) SetManifest(host model.HostID, comps []string) {
	fd.mu.Lock()
	fd.manifest[host] = append([]string(nil), comps...)
	fd.mu.Unlock()
}

// Manifest returns a host's last-reported component manifest.
func (fd *FailureDetector) Manifest(host model.HostID) []string {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return append([]string(nil), fd.manifest[host]...)
}
