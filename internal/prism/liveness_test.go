package prism

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dif/internal/model"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

func TestLeasePolicyTransitions(t *testing.T) {
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)

	fd.ObserveAt("h1", 0, clk.Now())
	if st := fd.State("h1"); st != HostUp {
		t.Fatalf("after heartbeat state = %v, want up", st)
	}
	if trans := fd.EvaluateAt(clk.Advance(1 * time.Second)); len(trans) != 0 {
		t.Fatalf("1s silence produced transitions: %v", trans)
	}
	trans := fd.EvaluateAt(clk.Advance(1500 * time.Millisecond)) // 2.5s silent
	if len(trans) != 1 || trans[0].From != HostUp || trans[0].To != HostSuspect {
		t.Fatalf("2.5s silence transitions = %v, want up→suspect", trans)
	}
	// A heartbeat clears the suspicion.
	trans = fd.ObserveAt("h1", 0, clk.Now())
	if len(trans) != 1 || trans[0].From != HostSuspect || trans[0].To != HostUp {
		t.Fatalf("recovery transitions = %v, want suspect→up", trans)
	}
	// Long silence goes straight to dead.
	trans = fd.EvaluateAt(clk.Advance(10 * time.Second))
	if len(trans) != 1 || trans[0].To != HostDead {
		t.Fatalf("10s silence transitions = %v, want →dead", trans)
	}
	if dead := fd.DeadHosts(); len(dead) != 1 || dead[0] != "h1" {
		t.Fatalf("DeadHosts = %v", dead)
	}
	// Dead hosts stay dead under further evaluation.
	if trans := fd.EvaluateAt(clk.Advance(time.Second)); len(trans) != 0 {
		t.Fatalf("dead host re-transitioned: %v", trans)
	}
}

func TestIncarnationGatedRejoin(t *testing.T) {
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)

	fd.ObserveAt("h1", 3, clk.Now())
	fd.EvaluateAt(clk.Advance(10 * time.Second))
	if st := fd.State("h1"); st != HostDead {
		t.Fatalf("state = %v, want dead", st)
	}
	// A replayed frame from the dead incarnation must not resurrect.
	if trans := fd.ObserveAt("h1", 3, clk.Now()); len(trans) != 0 {
		t.Fatalf("stale heartbeat resurrected the host: %v", trans)
	}
	if st := fd.State("h1"); st != HostDead {
		t.Fatalf("state after stale heartbeat = %v, want dead", st)
	}
	// A strictly greater incarnation rejoins.
	trans := fd.ObserveAt("h1", 4, clk.Now())
	if len(trans) != 1 || trans[0].From != HostDead || trans[0].To != HostUp || trans[0].Incarnation != 4 {
		t.Fatalf("rejoin transitions = %v, want dead→up inc=4", trans)
	}
	if inc := fd.Incarnation("h1"); inc != 4 {
		t.Fatalf("incarnation = %d, want 4", inc)
	}
}

func TestWatchNoticesNeverHeartbeatingHost(t *testing.T) {
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)
	fd.Watch("mute", clk.Now())
	trans := fd.EvaluateAt(clk.Advance(10 * time.Second))
	if len(trans) != 1 || trans[0].Host != "mute" || trans[0].To != HostDead {
		t.Fatalf("watched-but-silent host transitions = %v, want →dead", trans)
	}
}

func TestPhiAccrualAdaptsAndAccrues(t *testing.T) {
	clk := newFakeClock()
	p := NewPhiAccrualPolicy(0, 0)
	fd := NewFailureDetector(p)
	fd.SetClock(clk.Now)

	// Metronomic 1s heartbeats.
	for i := 0; i < 20; i++ {
		fd.ObserveAt("h1", 0, clk.Now())
		clk.Advance(time.Second)
	}
	// The clock now sits 1s after the last heartbeat: φ should be modest.
	low := p.Phi("h1", clk.Now())
	if low >= DefaultSuspectPhi {
		t.Fatalf("φ right after an on-time interval = %v, want < %v", low, DefaultSuspectPhi)
	}
	// Long silence accrues past the death threshold.
	high := p.Phi("h1", clk.Advance(8*time.Second))
	if high <= DefaultDeadPhi {
		t.Fatalf("φ after long silence = %v, want > %v", high, DefaultDeadPhi)
	}
	if high <= low {
		t.Fatalf("φ did not accrue: %v → %v", low, high)
	}
	trans := fd.EvaluateAt(clk.Now())
	if len(trans) != 1 || trans[0].To != HostDead {
		t.Fatalf("transitions = %v, want →dead", trans)
	}

	// A jittery host earns wider tolerance: with 2s–4s inter-arrivals, a
	// 5s gap should suspect later than it would for the metronomic host.
	clk2 := newFakeClock()
	p2 := NewPhiAccrualPolicy(0, 0)
	gaps := []time.Duration{2 * time.Second, 4 * time.Second, 3 * time.Second, 2 * time.Second, 4 * time.Second, 3 * time.Second}
	for _, g := range gaps {
		p2.Observe("h2", clk2.Now())
		clk2.Advance(g)
	}
	jitterPhi := p2.Phi("h2", clk2.Now().Add(2*time.Second))
	steadyPhi := p.Phi("h1", clk.Now())
	if jitterPhi >= steadyPhi {
		t.Fatalf("jittery host φ %v not more tolerant than steady host φ %v", jitterPhi, steadyPhi)
	}
}

func TestHeartbeatOverNetsimFeedsDetector(t *testing.T) {
	dw := newDeployWorld(t, 1.0, "m", "s1")
	dw.addCounter(t, "s1", "c1", 7)
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)
	dw.deployer.AttachDetector(fd)

	if err := dw.admins["s1"].SendHeartbeat(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fd.State("s1") == HostUp })
	if man := fd.Manifest("s1"); len(man) != 1 || man[0] != "c1" {
		t.Fatalf("manifest = %v, want [c1]", man)
	}

	// Silence (by the injected clock — no real waiting) kills the host
	// and the transition reaches subscribers.
	var gotMu sync.Mutex
	var got []Transition
	fd.Subscribe(func(tr Transition) {
		gotMu.Lock()
		got = append(got, tr)
		gotMu.Unlock()
	})
	fd.EvaluateAt(clk.Advance(10 * time.Second))
	gotMu.Lock()
	defer gotMu.Unlock()
	if len(got) != 1 || got[0].Host != "s1" || got[0].To != HostDead {
		t.Fatalf("published transitions = %v, want s1→dead", got)
	}
}

func TestEnactAbortsWhenParticipantDies(t *testing.T) {
	dw := newDeployWorld(t, 1.0, "m", "s1", "s2")
	dw.addCounter(t, "s1", "c1", 3)
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)
	dw.deployer.AttachDetector(fd)

	// s2 heartbeats once, then crashes: its fabric endpoint goes dark so
	// the wave's EvReconfig can never be honored.
	fd.ObserveAt("s2", 0, clk.Now())
	dw.fabric.Crash("s2")

	done := make(chan error, 1)
	go func() {
		_, err := dw.deployer.Enact(
			map[string]model.HostID{"c1": "s2"},
			map[string]model.HostID{"c1": "s1"},
			30*time.Second)
		done <- err
	}()

	// Let the wave get in flight, then declare s2 dead via the injected
	// clock. The death must abort the wave immediately — not after the
	// 30s deadline.
	time.Sleep(50 * time.Millisecond)
	fd.EvaluateAt(clk.Advance(10 * time.Second))

	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "died mid-wave") {
			t.Fatalf("err = %v, want mid-wave death abort", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wave did not abort on participant death")
	}
	// The component never left its source.
	if dw.archs["s1"].Component("c1") == nil {
		t.Fatal("c1 lost from source after aborted wave")
	}
}

func TestEnactAbortsUpFrontOnKnownDeadParticipant(t *testing.T) {
	dw := newDeployWorld(t, 1.0, "m", "s1", "s2")
	dw.addCounter(t, "s1", "c1", 3)
	clk := newFakeClock()
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	fd.SetClock(clk.Now)
	dw.deployer.AttachDetector(fd)

	fd.ObserveAt("s2", 0, clk.Now())
	dw.fabric.Crash("s2")
	fd.EvaluateAt(clk.Advance(10 * time.Second)) // dead before the wave starts

	start := time.Now()
	_, err := dw.deployer.Enact(
		map[string]model.HostID{"c1": "s2"},
		map[string]model.HostID{"c1": "s1"},
		30*time.Second)
	if err == nil || !strings.Contains(err.Error(), "died mid-wave") {
		t.Fatalf("err = %v, want dead-participant abort", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("known-dead participant still consumed the deadline")
	}
}

func TestDeployerCloseAbortsInFlightWave(t *testing.T) {
	dw := newDeployWorld(t, 1.0, "m", "s1", "s2")
	dw.addCounter(t, "s1", "c1", 3)
	// s2 is dark, so the wave can only end by deadline — or by Close.
	dw.fabric.Crash("s2")

	done := make(chan error, 1)
	go func() {
		_, err := dw.deployer.Enact(
			map[string]model.HostID{"c1": "s2"},
			map[string]model.HostID{"c1": "s1"},
			30*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	dw.deployer.Close()

	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed mid-wave") {
			t.Fatalf("err = %v, want closed-mid-wave abort", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not abort the in-flight wave (shutdown deadlock)")
	}
}

// TestDegradedOverlay pins the HostDegraded state machine: the overlay
// only attaches to an Up host, heartbeats refresh the policy without
// clearing it, Evaluate keeps it while heartbeats flow, and only
// MarkDegraded(off) returns it to Up.
func TestDegradedOverlay(t *testing.T) {
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	t0 := time.Unix(0, 0)
	var seen []Transition
	fd.Subscribe(func(tr Transition) { seen = append(seen, tr) })

	// Degrading an unknown host is a no-op.
	if tr := fd.MarkDegraded("h", true, t0); len(tr) != 0 {
		t.Fatalf("degrading an unknown host produced %v", tr)
	}

	fd.ObserveAt("h", 1, t0)
	tr := fd.MarkDegraded("h", true, t0.Add(time.Second))
	if len(tr) != 1 || tr[0].From != HostUp || tr[0].To != HostDegraded {
		t.Fatalf("MarkDegraded transitions = %v, want Up→Degraded", tr)
	}
	if st := fd.State("h"); st != HostDegraded {
		t.Fatalf("state = %v, want degraded", st)
	}
	if got := fd.DegradedHosts(); len(got) != 1 || got[0] != "h" {
		t.Fatalf("DegradedHosts = %v, want [h]", got)
	}

	// Heartbeats keep arriving: the overlay must survive both the
	// observation and a re-evaluation.
	fd.ObserveAt("h", 1, t0.Add(2*time.Second))
	if st := fd.State("h"); st != HostDegraded {
		t.Fatalf("heartbeat cleared the overlay: state = %v", st)
	}
	if tr := fd.EvaluateAt(t0.Add(3 * time.Second)); len(tr) != 0 {
		t.Fatalf("Evaluate while degraded-and-heartbeating produced %v", tr)
	}
	if st := fd.State("h"); st != HostDegraded {
		t.Fatalf("Evaluate cleared the overlay: state = %v", st)
	}

	// Recovery is explicit.
	tr = fd.MarkDegraded("h", false, t0.Add(4*time.Second))
	if len(tr) != 1 || tr[0].From != HostDegraded || tr[0].To != HostUp {
		t.Fatalf("recovery transitions = %v, want Degraded→Up", tr)
	}
	if len(seen) != 2 {
		t.Fatalf("subscriber saw %d transitions, want 2", len(seen))
	}
}

// TestDegradedHostStillDiesOnSilence pins that the overlay never shields
// a host whose heartbeats actually stop: Degraded escalates through
// Suspect to Dead on the normal policy schedule.
func TestDegradedHostStillDiesOnSilence(t *testing.T) {
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	t0 := time.Unix(0, 0)
	fd.ObserveAt("h", 1, t0)
	fd.MarkDegraded("h", true, t0)

	tr := fd.EvaluateAt(t0.Add(3 * time.Second))
	if len(tr) != 1 || tr[0].From != HostDegraded || tr[0].To != HostSuspect {
		t.Fatalf("silent degraded host transitions = %v, want Degraded→Suspect", tr)
	}
	tr = fd.EvaluateAt(t0.Add(6 * time.Second))
	if len(tr) != 1 || tr[0].To != HostDead {
		t.Fatalf("transitions = %v, want →Dead", tr)
	}
	// Dead is absorbing: clearing the overlay cannot resurrect it.
	if tr := fd.MarkDegraded("h", false, t0.Add(7*time.Second)); len(tr) != 0 {
		t.Fatalf("MarkDegraded(off) on a dead host produced %v", tr)
	}
	if st := fd.State("h"); st != HostDead {
		t.Fatalf("state = %v, want dead", st)
	}
}

// TestDegradedSuspectRecoversToUp pins that a degraded host whose
// heartbeats pause briefly (Suspect) and resume comes back as Up — the
// health scorer re-marks it if the gray fault persists.
func TestDegradedSuspectRecoversToUp(t *testing.T) {
	fd := NewFailureDetector(NewLeasePolicy(2*time.Second, 5*time.Second))
	t0 := time.Unix(0, 0)
	fd.ObserveAt("h", 1, t0)
	fd.MarkDegraded("h", true, t0)
	fd.EvaluateAt(t0.Add(3 * time.Second)) // → Suspect
	tr := fd.ObserveAt("h", 1, t0.Add(4*time.Second))
	if len(tr) != 1 || tr[0].From != HostSuspect || tr[0].To != HostUp {
		t.Fatalf("resumed heartbeat transitions = %v, want Suspect→Up", tr)
	}
}
