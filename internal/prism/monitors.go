package prism

import (
	"sync"
	"time"

	"dif/internal/model"
)

// InteractionSample is one observed logical-link measurement: how often
// (and how voluminously) two components interacted during a window.
type InteractionSample struct {
	Pair      model.ComponentPair
	Events    int
	BytesKB   float64
	Window    time.Duration
	Frequency float64 // events per second over the window
	AvgSizeKB float64
}

// EvtFrequencyMonitor records the frequencies of the events its
// associated brick routes (Prism-MW's EvtFrequencyMonitor). It aggregates
// (sender, target) pairs; broadcast events (no target) are attributed to
// the sender's pair with each receiver at routing time, so the monitor
// counts them against the sender only — matching the paper's model where
// a logical link's frequency is a property of the component pair.
type EvtFrequencyMonitor struct {
	mu      sync.Mutex
	started time.Time
	now     func() time.Time
	counts  map[model.ComponentPair]*pairCount
}

type pairCount struct {
	events  int
	bytesKB float64
}

var _ EventMonitor = (*EvtFrequencyMonitor)(nil)

// NewEvtFrequencyMonitor returns a monitor with an empty window.
func NewEvtFrequencyMonitor() *EvtFrequencyMonitor {
	m := &EvtFrequencyMonitor{
		now:    time.Now,
		counts: make(map[model.ComponentPair]*pairCount),
	}
	m.started = m.now()
	return m
}

// Observe implements EventMonitor. Only application events with both a
// sender and a target count toward logical-link frequencies; control and
// ping traffic is middleware overhead, not application interaction.
func (m *EvtFrequencyMonitor) Observe(e Event) {
	if e.kind() != KindApplication || e.Sender == "" || e.Target == "" || e.Sender == e.Target {
		return
	}
	pair := model.MakeComponentPair(model.ComponentID(e.Sender), model.ComponentID(e.Target))
	m.mu.Lock()
	pc, ok := m.counts[pair]
	if !ok {
		pc = &pairCount{}
		m.counts[pair] = pc
	}
	pc.events++
	pc.bytesKB += e.EffectiveSizeKB()
	m.mu.Unlock()
}

// Snapshot returns the samples for the current window and, when reset is
// true, starts a new window.
func (m *EvtFrequencyMonitor) Snapshot(reset bool) []InteractionSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.now().Sub(m.started)
	if window <= 0 {
		window = time.Nanosecond
	}
	out := make([]InteractionSample, 0, len(m.counts))
	for pair, pc := range m.counts {
		out = append(out, InteractionSample{
			Pair:      pair,
			Events:    pc.events,
			BytesKB:   pc.bytesKB,
			Window:    window,
			Frequency: float64(pc.events) / window.Seconds(),
			AvgSizeKB: pc.bytesKB / float64(pc.events),
		})
	}
	if reset {
		m.counts = make(map[model.ComponentPair]*pairCount)
		m.started = m.now()
	}
	return out
}

// SetClock overrides the monitor's time source and restarts the window.
// AttachMonitors plumbs AdminConfig.Clock through here so staleness
// aging follows the injected drill clock; nil is ignored.
func (m *EvtFrequencyMonitor) SetClock(now func() time.Time) {
	if now == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
	m.started = now()
}

// ReliabilitySample is one observed physical-link measurement.
type ReliabilitySample struct {
	Peer        model.HostID
	Probes      int
	Delivered   int
	Reliability float64
}

// NetworkReliabilityMonitor records the reliability of connectivity
// between its associated DistributionConnector and remote distribution
// connectors using the pinging technique (Prism-MW's
// NetworkReliabilityMonitor). Probe batches are driven explicitly by
// MeasureOnce so monitoring intervals stay under the framework's control
// (short intervals of adjustable duration, DSN'04 §4.3).
type NetworkReliabilityMonitor struct {
	dc *DistributionConnector
	// ProbesPerMeasurement is the ping batch size per peer (default 20).
	ProbesPerMeasurement int

	mu   sync.Mutex
	last map[model.HostID]ReliabilitySample
}

// NewNetworkReliabilityMonitor returns a monitor over the connector.
func NewNetworkReliabilityMonitor(dc *DistributionConnector) *NetworkReliabilityMonitor {
	return &NetworkReliabilityMonitor{
		dc:                   dc,
		ProbesPerMeasurement: 20,
		last:                 make(map[model.HostID]ReliabilitySample),
	}
}

// MeasureOnce probes every reachable peer once and returns the samples.
func (m *NetworkReliabilityMonitor) MeasureOnce() []ReliabilitySample {
	probes := m.ProbesPerMeasurement
	if probes <= 0 {
		probes = 20
	}
	peers := m.dc.Peers()
	out := make([]ReliabilitySample, 0, len(peers))
	for _, peer := range peers {
		before := m.dc.PeerStats(peer)
		m.dc.PingN(peer, probes)
		after := m.dc.PeerStats(peer)
		sample := ReliabilitySample{
			Peer:      peer,
			Probes:    after.Sent - before.Sent,
			Delivered: after.Delivered - before.Delivered,
		}
		if sample.Probes > 0 {
			sample.Reliability = float64(sample.Delivered) / float64(sample.Probes)
		}
		out = append(out, sample)
		m.mu.Lock()
		m.last[peer] = sample
		m.mu.Unlock()
	}
	return out
}

// Last returns the most recent sample for a peer.
func (m *NetworkReliabilityMonitor) Last(peer model.HostID) (ReliabilitySample, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.last[peer]
	return s, ok
}
