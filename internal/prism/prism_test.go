package prism

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoComponent counts what it receives and can send on demand.
type echoComponent struct {
	BaseComponent
	mu       sync.Mutex
	received []Event
	count    atomic.Int64
}

func newEcho(id string) *echoComponent {
	return &echoComponent{BaseComponent: NewBaseComponent(id)}
}

func (c *echoComponent) Handle(e Event) {
	c.mu.Lock()
	c.received = append(c.received, e)
	c.mu.Unlock()
	c.count.Add(1)
}

func (c *echoComponent) events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.received...)
}

// counterComponent is a migratable component whose state is a counter.
type counterComponent struct {
	BaseComponent
	mu    sync.Mutex
	Count int
}

func newCounter(id string) *counterComponent {
	return &counterComponent{BaseComponent: NewBaseComponent(id)}
}

func (c *counterComponent) Handle(e Event) {
	if e.kind() != KindApplication {
		return // ping probes and control traffic are not state
	}
	c.mu.Lock()
	c.Count++
	c.mu.Unlock()
}

func (c *counterComponent) TypeName() string { return "counter" }

func (c *counterComponent) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct{ Count int }{c.Count})
}

func (c *counterComponent) Restore(state []byte) error {
	var s struct{ Count int }
	if err := json.Unmarshal(state, &s); err != nil {
		return err
	}
	c.mu.Lock()
	c.Count = s.Count
	c.mu.Unlock()
	return nil
}

func (c *counterComponent) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Count
}

var _ Migratable = (*counterComponent)(nil)

func TestEventEncodeDecode(t *testing.T) {
	e := Event{
		Name: "test", Kind: KindControl, Sender: "a", Target: "b",
		SrcHost: "h1", DstHost: "h2", SizeKB: 3.5, Payload: "payload",
	}
	data, err := EncodeEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvent(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.Sender != e.Sender || got.Target != e.Target ||
		got.SrcHost != e.SrcHost || got.DstHost != e.DstHost || got.Payload != "payload" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeEvent([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestEventEffectiveSize(t *testing.T) {
	if got := (Event{}).EffectiveSizeKB(); got != DefaultEventSizeKB {
		t.Fatalf("default size = %v", got)
	}
	if got := (Event{SizeKB: 7}).EffectiveSizeKB(); got != 7 {
		t.Fatalf("explicit size = %v", got)
	}
	if (Event{}).kind() != KindApplication {
		t.Fatal("zero kind should be application")
	}
}

func TestScaffoldSynchronousByDefault(t *testing.T) {
	s := NewScaffold()
	ran := false
	s.Dispatch(func() { ran = true })
	if !ran {
		t.Fatal("unstarted scaffold should dispatch synchronously")
	}
}

func TestScaffoldAsyncDrain(t *testing.T) {
	s := NewScaffold()
	s.Start(4)
	defer s.Stop()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		s.Dispatch(func() { n.Add(1) })
	}
	s.Drain()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestScaffoldStopDrainsQueue(t *testing.T) {
	s := NewScaffold()
	s.Start(1)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		s.Dispatch(func() { n.Add(1) })
	}
	s.Stop()
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks after Stop, want 50", n.Load())
	}
	// After stop the scaffold is synchronous again.
	ran := false
	s.Dispatch(func() { ran = true })
	if !ran {
		t.Fatal("stopped scaffold should be synchronous")
	}
}

func TestScaffoldDoubleStartStop(t *testing.T) {
	s := NewScaffold()
	s.Start(2)
	s.Start(2) // no-op
	s.Stop()
	s.Stop() // no-op
}

func TestConnectorBroadcast(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	a, b, cc := newEcho("a"), newEcho("b"), newEcho("c")
	for _, comp := range []*echoComponent{a, b, cc} {
		c.attach(comp)
	}
	c.Route(Event{Name: "x", Sender: "a"})
	if a.count.Load() != 0 {
		t.Fatal("sender received its own broadcast")
	}
	if b.count.Load() != 1 || cc.count.Load() != 1 {
		t.Fatalf("broadcast counts: b=%d c=%d", b.count.Load(), cc.count.Load())
	}
}

func TestConnectorTargetedDelivery(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	a, b := newEcho("a"), newEcho("b")
	c.attach(a)
	c.attach(b)
	c.Route(Event{Name: "x", Sender: "a", Target: "b"})
	if b.count.Load() != 1 || a.count.Load() != 0 {
		t.Fatalf("targeted delivery: a=%d b=%d", a.count.Load(), b.count.Load())
	}
	// Unknown target: dropped silently.
	c.Route(Event{Name: "x", Sender: "a", Target: "ghost"})
	if a.count.Load() != 0 || b.count.Load() != 1 {
		t.Fatal("unknown target leaked")
	}
}

func TestConnectorHoldRelease(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	b := newEcho("b")
	c.attach(b)
	c.Hold("b")
	c.Route(Event{Name: "x", Sender: "a", Target: "b"})
	c.Route(Event{Name: "y", Sender: "a", Target: "b"})
	if b.count.Load() != 0 {
		t.Fatal("held events were delivered")
	}
	if n := c.Release("b", true); n != 2 {
		t.Fatalf("released %d events, want 2", n)
	}
	if b.count.Load() != 2 {
		t.Fatalf("after release b=%d, want 2", b.count.Load())
	}
	// Release of a non-held target is a no-op.
	if n := c.Release("b", true); n != 0 {
		t.Fatalf("double release returned %d", n)
	}
}

func TestConnectorHoldDrop(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	b := newEcho("b")
	c.attach(b)
	c.Hold("b")
	c.Route(Event{Name: "x", Target: "b"})
	if n := c.Release("b", false); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	if b.count.Load() != 0 {
		t.Fatal("dropped events were delivered")
	}
}

func TestConnectorMonitors(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	m := NewEvtFrequencyMonitor()
	c.AddMonitor(m)
	c.attach(newEcho("a"))
	c.attach(newEcho("b"))
	c.Route(Event{Name: "x", Sender: "a", Target: "b"})
	samples := m.Snapshot(false)
	if len(samples) != 1 || samples[0].Events != 1 {
		t.Fatalf("samples = %+v", samples)
	}
	c.RemoveMonitors()
	c.Route(Event{Name: "x", Sender: "a", Target: "b"})
	if got := m.Snapshot(false); got[0].Events != 1 {
		t.Fatal("removed monitor still observing")
	}
}

func TestConnectorHostAddressing(t *testing.T) {
	s := NewScaffold()
	c := NewConnector("bus", s)
	c.host = "h1"
	b := newEcho("b")
	c.attach(b)
	c.Route(Event{Name: "x", Target: "b", DstHost: "h2"}) // not for us
	if b.count.Load() != 0 {
		t.Fatal("event addressed to another host delivered locally")
	}
	c.Route(Event{Name: "x", Target: "b", DstHost: "h1"})
	if b.count.Load() != 1 {
		t.Fatal("event addressed to this host not delivered")
	}
}

func TestArchitectureWeldAndEmit(t *testing.T) {
	arch := NewArchitecture("h1", nil)
	if _, err := arch.AddConnector("bus"); err != nil {
		t.Fatal(err)
	}
	a, b := newEcho("a"), newEcho("b")
	if err := arch.AddComponent(a); err != nil {
		t.Fatal(err)
	}
	if err := arch.AddComponent(b); err != nil {
		t.Fatal(err)
	}
	if a.Attached() {
		t.Fatal("component attached before weld")
	}
	for _, id := range []string{"a", "b"} {
		if err := arch.Weld(id, "bus"); err != nil {
			t.Fatal(err)
		}
	}
	a.Emit(Event{Name: "hello"})
	if b.count.Load() != 1 {
		t.Fatalf("b received %d", b.count.Load())
	}
	evs := b.events()
	if evs[0].Sender != "a" {
		t.Fatalf("sender not stamped: %+v", evs[0])
	}
}

func TestArchitectureUnweld(t *testing.T) {
	arch := NewArchitecture("h1", nil)
	if _, err := arch.AddConnector("bus"); err != nil {
		t.Fatal(err)
	}
	a, b := newEcho("a"), newEcho("b")
	_ = arch.AddComponent(a)
	_ = arch.AddComponent(b)
	_ = arch.Weld("a", "bus")
	_ = arch.Weld("b", "bus")
	if err := arch.Unweld("b", "bus"); err != nil {
		t.Fatal(err)
	}
	a.Emit(Event{Name: "hello"})
	if b.count.Load() != 0 {
		t.Fatal("unwelded component still receiving")
	}
	if a.Attached() != true {
		t.Fatal("a should stay attached")
	}
}

func TestArchitectureRemoveComponent(t *testing.T) {
	arch := NewArchitecture("h1", nil)
	if _, err := arch.AddConnector("bus"); err != nil {
		t.Fatal(err)
	}
	a := newEcho("a")
	_ = arch.AddComponent(a)
	_ = arch.Weld("a", "bus")
	comp, err := arch.RemoveComponent("a")
	if err != nil {
		t.Fatal(err)
	}
	if comp.ID() != "a" {
		t.Fatal("wrong component returned")
	}
	if a.Attached() {
		t.Fatal("removed component still bound")
	}
	if arch.Component("a") != nil {
		t.Fatal("component still registered")
	}
	if _, err := arch.RemoveComponent("a"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestArchitectureDuplicatesAndUnknowns(t *testing.T) {
	arch := NewArchitecture("h1", nil)
	if _, err := arch.AddConnector("bus"); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.AddConnector("bus"); err == nil {
		t.Fatal("duplicate connector accepted")
	}
	a := newEcho("a")
	_ = arch.AddComponent(a)
	if err := arch.AddComponent(newEcho("a")); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if err := arch.Weld("ghost", "bus"); err == nil {
		t.Fatal("weld of unknown component accepted")
	}
	if err := arch.Weld("a", "ghost"); err == nil {
		t.Fatal("weld to unknown connector accepted")
	}
	if err := arch.Unweld("ghost", "bus"); err == nil {
		t.Fatal("unweld of unknown component accepted")
	}
}

func TestArchitectureAccessors(t *testing.T) {
	arch := NewArchitecture("h1", nil)
	_, _ = arch.AddConnector("bus2")
	_, _ = arch.AddConnector("bus1")
	_ = arch.AddComponent(newEcho("z"))
	_ = arch.AddComponent(newEcho("a"))
	_ = arch.Weld("a", "bus1")
	_ = arch.Weld("a", "bus2")
	ids := arch.ComponentIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "z" {
		t.Fatalf("ComponentIDs = %v", ids)
	}
	names := arch.ConnectorNames()
	if len(names) != 2 || names[0] != "bus1" {
		t.Fatalf("ConnectorNames = %v", names)
	}
	welds := arch.WeldsOf("a")
	if len(welds) != 2 || welds[0] != "bus1" {
		t.Fatalf("WeldsOf = %v", welds)
	}
	if arch.Host() != "h1" {
		t.Fatal("Host wrong")
	}
}

func TestBaseComponentEmitWhileDetached(t *testing.T) {
	a := newEcho("a")
	a.Emit(Event{Name: "x"}) // must not panic
	if a.Attached() {
		t.Fatal("detached component reports attached")
	}
}

func TestFactoryRegistry(t *testing.T) {
	r := NewFactoryRegistry()
	r.Register("counter", func(id string) Migratable { return newCounter(id) })
	c, err := r.New("counter", "c9")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != "c9" || c.TypeName() != "counter" {
		t.Fatalf("factory produced %v/%v", c.ID(), c.TypeName())
	}
	if _, err := r.New("nope", "x"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestMigratableSnapshotRestore(t *testing.T) {
	c := newCounter("c1")
	c.Handle(Event{})
	c.Handle(Event{})
	state, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCounter("c1")
	if err := c2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if c2.value() != 2 {
		t.Fatalf("restored count = %d, want 2", c2.value())
	}
	if err := c2.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage state accepted")
	}
}

func TestEvtFrequencyMonitorMath(t *testing.T) {
	m := NewEvtFrequencyMonitor()
	base := time.Unix(1000, 0)
	now := base
	m.SetClock(func() time.Time { return now })
	for i := 0; i < 10; i++ {
		m.Observe(Event{Sender: "a", Target: "b", SizeKB: 2})
	}
	m.Observe(Event{Sender: "c", Target: "a", SizeKB: 4})
	now = base.Add(5 * time.Second)
	samples := m.Snapshot(true)
	if len(samples) != 2 {
		t.Fatalf("samples = %+v", samples)
	}
	for _, s := range samples {
		if s.Pair.A == "a" && s.Pair.B == "b" {
			if s.Events != 10 || s.Frequency != 2.0 || s.AvgSizeKB != 2 {
				t.Fatalf("a-b sample = %+v", s)
			}
		}
	}
	// Window reset: new snapshot is empty.
	if got := m.Snapshot(false); len(got) != 0 {
		t.Fatalf("window not reset: %+v", got)
	}
}

func TestEvtFrequencyMonitorIgnoresNonApplication(t *testing.T) {
	m := NewEvtFrequencyMonitor()
	m.Observe(Event{Kind: KindControl, Sender: "a", Target: "b"})
	m.Observe(Event{Kind: KindPing, Sender: "a", Target: "b"})
	m.Observe(Event{Sender: "", Target: "b"})
	m.Observe(Event{Sender: "a", Target: ""})
	m.Observe(Event{Sender: "a", Target: "a"})
	if got := m.Snapshot(false); len(got) != 0 {
		t.Fatalf("non-application traffic counted: %+v", got)
	}
}
