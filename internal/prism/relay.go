package prism

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// EvRelay wraps a control event being relayed hop-by-hop toward a host
// the sender cannot reach directly. Admins forward relay envelopes to
// their own peers (TTL-limited flood with duplicate suppression), so the
// control plane works over multi-hop topologies — e.g. the paper's §1
// scenario, where HQ reaches troop PDAs only through commander PDAs.
const EvRelay = "admin.relay"

// RelayPayload is the relay envelope.
type RelayPayload struct {
	// ID uniquely identifies the relayed message for duplicate
	// suppression ("origin/seq").
	ID string
	// TTL bounds the flood depth.
	TTL int
	// Data is the encoded inner control event.
	Data []byte
}

// DefaultRelayTTL bounds relay floods; it comfortably covers the
// topologies the framework targets (a handful of wireless hops).
const DefaultRelayTTL = 5

func registerRelayPayload() {
	gob.Register(RelayPayload{})
}

// relayState tracks duplicate suppression and sequence numbering for one
// host's control sender.
type relayState struct {
	mu   sync.Mutex
	seq  int
	seen map[string]bool
}

func newRelayState() *relayState {
	return &relayState{seen: make(map[string]bool)}
}

// nextID mints a flood-unique envelope ID. The origin's incarnation is
// part of the identity: a restarted host's fresh sender counts from 1
// again, and without the lifetime number its first envelopes would
// collide with IDs its previous lifetime already flooded — peers would
// suppress them as duplicates until the new counter outran the old one.
// (The app-delivery layer solves the same problem with SeqInc.)
func (rs *relayState) nextID(origin model.HostID, from string, inc uint64) string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.seq++
	return fmt.Sprintf("%s/%s/%d/%d", origin, from, inc, rs.seq)
}

// markSeen records an envelope ID, reporting whether it was new.
func (rs *relayState) markSeen(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.seen[id] {
		return false
	}
	rs.seen[id] = true
	return true
}

// controlSender is the shared control-plane transmission logic of
// AdminComponent and DeployerComponent: direct delivery with retries when
// the destination is a peer, TTL-flood relaying otherwise.
type controlSender struct {
	arch  *Architecture
	cfg   AdminConfig
	from  string // component ID stamped as sender
	relay *relayState
	// inc is the sender's lifetime number, folded into relay envelope
	// IDs; AdminComponent.SetIncarnation updates it on rejoin.
	inc atomic.Uint64
	// seq numbers backoff sleeps for deterministic jitter.
	seq atomic.Uint64
	// cancel, when set, is consulted between retry attempts: a true
	// return abandons the send. Owners use it to stop the capped-backoff
	// loop from hammering a partitioned link on behalf of a wave that has
	// since been aborted, or a leadership that has since been fenced.
	cancel func(e Event) bool
	// breaker, when non-nil (AdminConfig.Breaker.Enabled), fail-fasts
	// sends toward peers whose circuits are open and bounds per-peer
	// in-flight retry chains.
	breaker *circuitBreaker
}

// setCancel installs the retry-abandon predicate. Call before the sender
// is shared across goroutines (i.e. during component construction).
func (cs *controlSender) setCancel(fn func(e Event) bool) { cs.cancel = fn }

func newControlSender(arch *Architecture, cfg AdminConfig, from string) *controlSender {
	registerPayloadsOnce.Do(registerControlPayloads)
	cs := &controlSender{arch: arch, cfg: cfg.withDefaults(), from: from, relay: newRelayState()}
	cs.inc.Store(cfg.Incarnation)
	if cs.cfg.Breaker.Enabled {
		cs.breaker = newCircuitBreaker(cs.cfg.Breaker, cs.cfg.Clock, func(base string, peer model.HostID) *obs.Counter {
			return cs.arch.Obs().Counter(obs.Name(base, "host", string(cs.arch.Host()), "peer", string(peer)))
		})
	}
	return cs
}

// setIncarnation updates the lifetime number stamped into relay
// envelope IDs.
func (cs *controlSender) setIncarnation(inc uint64) { cs.inc.Store(inc) }

// send delivers a control event to a host: locally, directly, or via
// relay flood.
func (cs *controlSender) send(to model.HostID, e Event) error {
	e.Kind = KindControl
	e.Sender = cs.from
	e.DstHost = to
	if to == cs.arch.Host() {
		if conn := cs.arch.Connector(cs.cfg.Bus); conn != nil {
			conn.Route(e)
			return nil
		}
		return fmt.Errorf("%s %s: no bus connector", cs.from, cs.arch.Host())
	}
	dc := cs.arch.DistributionConnector(cs.cfg.Bus)
	if dc == nil {
		return fmt.Errorf("%s %s: bus is not a distribution connector", cs.from, cs.arch.Host())
	}
	e.SrcHost = cs.arch.Host()
	data, err := EncodeEvent(e)
	if err != nil {
		return err
	}
	if cs.isPeer(dc, to) {
		return cs.sendDirect(dc, to, data, e.EffectiveSizeKB(), e.Name, e)
	}
	return cs.sendRelayed(dc, data, e.EffectiveSizeKB(), e.Name, "", e)
}

func (cs *controlSender) isPeer(dc *DistributionConnector, h model.HostID) bool {
	for _, p := range dc.Transport().Peers() {
		if p == h {
			return true
		}
	}
	return false
}

// sendDirect retries a lossy link until the frame gets through or the
// attempt budget is spent, with capped exponential backoff and
// deterministic jitter between attempts so simultaneous senders desync.
// The cancel predicate is re-checked before and after every backoff
// sleep: an outcome retry for an epoch that was aborted meanwhile, or a
// frame from a deployer that lost its lease, is abandoned instead of
// burning the remaining attempt budget against a partitioned link.
func (cs *controlSender) sendDirect(dc *DistributionConnector, to model.HostID, data []byte, sizeKB float64, name string, ev Event) error {
	if cs.breaker == nil {
		err, _ := cs.sendDirectRetry(dc, to, data, sizeKB, name, ev)
		return err
	}
	release, err := cs.breaker.Acquire(to)
	if err != nil {
		return fmt.Errorf("%s %s → %s: %s: %w", cs.from, cs.arch.Host(), to, name, err)
	}
	err, cancelled := cs.sendDirectRetry(dc, to, data, sizeKB, name, ev)
	switch {
	case err == nil:
		release(sendOK)
	case cancelled:
		release(sendAbandoned)
	default:
		release(sendFailed)
	}
	return err
}

// sendDirectRetry is the retry chain itself; the second return marks a
// chain abandoned by the cancel predicate (no evidence about the peer).
func (cs *controlSender) sendDirectRetry(dc *DistributionConnector, to model.HostID, data []byte, sizeKB float64, name string, ev Event) (error, bool) {
	attempts := cs.cfg.SendAttempts
	if cs.cfg.Retry.Disabled {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if cs.cancel != nil && cs.cancel(ev) {
				cs.metric("prism_control_sends_cancelled_total").Inc()
				return fmt.Errorf("%s %s → %s: %s send cancelled after %d attempts",
					cs.from, cs.arch.Host(), to, name, i), true
			}
			cs.metric("prism_control_retries_total").Inc()
			time.Sleep(cs.backoff(i - 1))
			if cs.cancel != nil && cs.cancel(ev) {
				cs.metric("prism_control_sends_cancelled_total").Inc()
				return fmt.Errorf("%s %s → %s: %s send cancelled after %d attempts",
					cs.from, cs.arch.Host(), to, name, i), true
			}
		}
		if lastErr = dc.Transport().Send(to, data, sizeKB); lastErr == nil {
			return nil, false
		}
	}
	cs.metric("prism_control_send_failures_total").Inc()
	return fmt.Errorf("%s %s → %s: %s undeliverable after %d attempts: %w",
		cs.from, cs.arch.Host(), to, name, attempts, lastErr), false
}

// metric resolves a host-labelled counter from the architecture's
// registry. The lookup is lazy (the registry may be wired after this
// sender was built) and nil-safe; it only runs on the retry/failure slow
// path.
func (cs *controlSender) metric(base string) *obs.Counter {
	return cs.arch.Obs().Counter(obs.Name(base, "host", string(cs.arch.Host())))
}

// backoff returns the delay before retry attempt+1: an exponential ramp
// from BaseDelay capped at MaxDelay, jittered into [delay/2, delay] by a
// splitmix64 hash of the policy seed and a per-sender sleep counter —
// deterministic for a fixed seed, yet different across senders.
func (cs *controlSender) backoff(attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	d := cs.cfg.Retry.BaseDelay << uint(attempt)
	if d <= 0 || d > cs.cfg.Retry.MaxDelay {
		d = cs.cfg.Retry.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(uint64(cs.cfg.Retry.Seed)*0x9e3779b97f4a7c15 + cs.seq.Add(1))
	return half + time.Duration(j%uint64(half)+1)
}

// splitmix64 is the standard 64-bit finalizer used for cheap seeded
// hashing (same construction as the parallel-search seed derivation).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sendRelayed floods a relay envelope to every peer (except the one the
// message came from, when forwarding).
func (cs *controlSender) sendRelayed(dc *DistributionConnector, data []byte, sizeKB float64, name string, except model.HostID, inner Event) error {
	env := RelayPayload{
		ID:   cs.relay.nextID(cs.arch.Host(), cs.from, cs.inc.Load()),
		TTL:  DefaultRelayTTL,
		Data: data,
	}
	cs.relay.markSeen(env.ID) // never re-forward our own envelope
	return cs.floodEnvelope(dc, env, sizeKB, name, except, inner)
}

func (cs *controlSender) floodEnvelope(dc *DistributionConnector, env RelayPayload, sizeKB float64, name string, except model.HostID, inner Event) error {
	peers := dc.Transport().Peers()
	sentAny := false
	var lastErr error
	for _, peer := range peers {
		if peer == except {
			continue
		}
		wrapped := Event{
			Name:    EvRelay,
			Kind:    KindControl,
			Sender:  cs.from,
			Target:  AdminID,
			SrcHost: cs.arch.Host(),
			DstHost: peer,
			SizeKB:  sizeKB,
			Payload: env,
		}
		data, err := EncodeEvent(wrapped)
		if err != nil {
			return err
		}
		if err := cs.sendDirect(dc, peer, data, sizeKB, name+"(relay)", inner); err != nil {
			lastErr = err
			continue
		}
		sentAny = true
	}
	if !sentAny {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("%s %s: no peers to relay %s through", cs.from, cs.arch.Host(), name)
	}
	return nil
}

// handleRelay processes a received relay envelope: deliver locally when
// the inner event is for this host, otherwise keep flooding while TTL
// lasts. It reports whether the envelope was consumed (new).
func (cs *controlSender) handleRelay(env RelayPayload, from model.HostID) bool {
	if !cs.relay.markSeen(env.ID) {
		return false
	}
	inner, err := DecodeEvent(env.Data)
	if err != nil {
		return false
	}
	if inner.DstHost == cs.arch.Host() {
		if conn := cs.arch.Connector(cs.cfg.Bus); conn != nil {
			conn.Route(inner)
		}
		return true
	}
	if env.TTL <= 0 {
		return true
	}
	dc := cs.arch.DistributionConnector(cs.cfg.Bus)
	if dc == nil {
		return true
	}
	// If the final destination is now a direct peer, deliver straight to
	// it; otherwise keep flooding.
	if cs.isPeer(dc, inner.DstHost) {
		_ = cs.sendDirect(dc, inner.DstHost, env.Data, inner.EffectiveSizeKB(), inner.Name+"(relay-final)", inner)
		return true
	}
	env.TTL--
	_ = cs.floodEnvelope(dc, env, inner.EffectiveSizeKB(), inner.Name, from, inner)
	return true
}
