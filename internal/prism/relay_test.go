package prism

import (
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/netsim"
)

// newChainWorld builds hosts connected in a line: h0—h1—h2—…, with
// admins on every host and a deployer on the first.
func newChainWorld(t *testing.T, rel float64, n int) *deployWorld {
	t.Helper()
	w := &world{
		fabric: netsim.NewFabric(13),
		archs:  make(map[model.HostID]*Architecture),
		buses:  make(map[model.HostID]*DistributionConnector),
	}
	t.Cleanup(w.fabric.Close)
	hosts := make([]model.HostID, n)
	for i := range hosts {
		hosts[i] = model.HostID(rune('a'+i)) + "host"
	}
	for _, h := range hosts {
		if err := w.fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := w.fabric.Connect(hosts[i-1], hosts[i],
			netsim.LinkState{Reliability: rel, BandwidthKB: 10_000}); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts {
		arch := NewArchitecture(h, nil)
		tr, err := NewNetsimTransport(w.fabric, h)
		if err != nil {
			t.Fatal(err)
		}
		bus, err := arch.AddDistributionConnector("bus", tr)
		if err != nil {
			t.Fatal(err)
		}
		w.archs[h] = arch
		w.buses[h] = bus
	}
	dw := &deployWorld{
		world:    w,
		admins:   make(map[model.HostID]*AdminComponent),
		registry: NewFactoryRegistry(),
		master:   hosts[0],
	}
	dw.registry.Register("counter", func(id string) Migratable { return newCounter(id) })
	cfg := AdminConfig{Deployer: dw.master, Bus: "bus", Registry: dw.registry}
	for _, h := range hosts {
		admin, err := InstallAdmin(w.archs[h], cfg)
		if err != nil {
			t.Fatal(err)
		}
		dw.admins[h] = admin
	}
	dep, err := InstallDeployer(w.archs[dw.master], cfg)
	if err != nil {
		t.Fatal(err)
	}
	dw.deployer = dep
	return dw
}

func TestRelayReportsAcrossChain(t *testing.T) {
	// 4-host chain: the master can only reach chost and dhost via relays.
	dw := newChainWorld(t, 1.0, 4)
	dw.addCounter(t, "chost", "c1", 0)
	dw.addCounter(t, "dhost", "c2", 0)
	reports, err := dw.deployer.RequestReports(
		[]model.HostID{"bhost", "chost", "dhost"}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports across the chain", len(reports))
	}
	if got := reports["dhost"].Components; len(got) != 1 || got[0] != "c2" {
		t.Fatalf("dhost report = %v", got)
	}
}

func TestRelayMigrationAcrossChain(t *testing.T) {
	// Move a component between the two chain ends: fetch and transfer
	// must both be mediated and relayed.
	dw := newChainWorld(t, 1.0, 4)
	c := dw.addCounter(t, "dhost", "c1", 42)
	_ = c
	if _, err := dw.deployer.RequestReports(
		[]model.HostID{"bhost", "chost", "dhost"}, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := dw.deployer.Enact(
		map[string]model.HostID{"c1": "ahost"},
		map[string]model.HostID{"c1": "dhost"},
		8*time.Second,
	)
	if err != nil {
		t.Fatalf("chain enact: %v (%+v)", err, res)
	}
	waitFor(t, func() bool { return dw.archs["ahost"].Component("c1") != nil })
	if got := dw.archs["ahost"].Component("c1").(*counterComponent).value(); got != 42 {
		t.Fatalf("state after chain migration = %d, want 42", got)
	}
	if dw.archs["dhost"].Component("c1") != nil {
		t.Fatal("component still at the far end")
	}
}

func TestRelayMigrationAcrossLossyChain(t *testing.T) {
	dw := newChainWorld(t, 0.7, 3)
	dw.addCounter(t, "chost", "c1", 7)
	if _, err := dw.deployer.RequestReports(
		[]model.HostID{"bhost", "chost"}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := dw.deployer.Enact(
		map[string]model.HostID{"c1": "ahost"},
		map[string]model.HostID{"c1": "chost"},
		15*time.Second,
	)
	if err != nil {
		t.Fatalf("lossy chain enact: %v (%+v)", err, res)
	}
	waitFor(t, func() bool { return dw.archs["ahost"].Component("c1") != nil })
}

func TestRelayDuplicateSuppression(t *testing.T) {
	rs := newRelayState()
	id := rs.nextID("h1", AdminID, 0)
	if !rs.markSeen(id) {
		t.Fatal("fresh id reported seen")
	}
	if rs.markSeen(id) {
		t.Fatal("duplicate id reported fresh")
	}
	id2 := rs.nextID("h1", AdminID, 0)
	if id == id2 {
		t.Fatal("sequence ids collide")
	}
	// Different components on the same host never collide.
	if rs.nextID("h1", DeployerID, 0) == id2 {
		t.Fatal("admin and deployer ids collide")
	}
}

// TestRelayIDsDistinctAcrossIncarnations pins the restart-rejoin fix: a
// restarted host's relay sender counts envelopes from 1 again, so the
// envelope identity must include the lifetime number — otherwise peers
// that saw the previous lifetime's floods suppress the fresh frames as
// duplicates until the new counter outruns the old one (which silently
// eats a rejoining agent's first goal-state announces).
func TestRelayIDsDistinctAcrossIncarnations(t *testing.T) {
	old := newRelayState()
	peer := newRelayState() // a neighbour that saw the old lifetime
	for i := 0; i < 5; i++ {
		peer.markSeen(old.nextID("h1", AdminID, 0))
	}
	fresh := newRelayState() // the restarted lifetime, incarnation bumped
	if id := fresh.nextID("h1", AdminID, 1); !peer.markSeen(id) {
		t.Fatalf("restarted lifetime's first envelope %q suppressed as a duplicate", id)
	}
	// And the sender wiring: SetIncarnation reaches the control sender.
	dw := newDeployWorld(t, 1.0, "m", "s1")
	a := dw.admins["s1"]
	a.SetIncarnation(7)
	if got := a.sender.inc.Load(); got != 7 {
		t.Fatalf("sender incarnation = %d after SetIncarnation(7)", got)
	}
}

func TestRelayTTLBoundsFloodDepth(t *testing.T) {
	// A chain longer than the TTL: the report request cannot reach the
	// far end, and the deployer reports the shortfall.
	n := DefaultRelayTTL + 3
	dw := newChainWorld(t, 1.0, n)
	far := model.HostID(rune('a'+n-1)) + "host"
	_, err := dw.deployer.RequestReports([]model.HostID{far}, 1*time.Second)
	if err == nil {
		t.Fatalf("report crossed %d hops with TTL %d", n-1, DefaultRelayTTL)
	}
}
