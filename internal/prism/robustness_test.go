package prism

import (
	"testing"
	"time"

	"dif/internal/model"
	"dif/internal/netsim"
	"dif/internal/obs"
)

// faultWorld is a deployWorld variant whose transports are wrapped in
// seeded fault injectors: reliability comes entirely from the injected
// fault mix, not the fabric.
type faultWorld struct {
	fabric   *netsim.Fabric
	archs    map[model.HostID]*Architecture
	faults   map[model.HostID]*FaultTransport
	obsReg   *obs.Registry
	admins   map[model.HostID]*AdminComponent
	deployer *DeployerComponent
	registry *FactoryRegistry
	master   model.HostID
}

// fastRetryCfg keeps the robustness tests quick: aggressive end-to-end
// retransmission intervals and a short outcome-ack budget.
func fastRetryCfg() AdminConfig {
	return AdminConfig{
		FetchRetryInterval:  30 * time.Millisecond,
		FetchRetryAttempts:  100,
		EnactResendInterval: 30 * time.Millisecond,
		OutcomeAckTimeout:   500 * time.Millisecond,
	}
}

// newFaultWorld builds a full mesh of perfectly reliable links, wraps
// each host's transport with its FaultConfig from fcs (zero config when
// absent), and installs admins everywhere plus a deployer on the first
// host.
func newFaultWorld(t *testing.T, cfg AdminConfig, fcs map[model.HostID]FaultConfig, hosts ...model.HostID) *faultWorld {
	t.Helper()
	fw := &faultWorld{
		fabric:   netsim.NewFabric(42),
		archs:    make(map[model.HostID]*Architecture),
		faults:   make(map[model.HostID]*FaultTransport),
		obsReg:   obs.NewRegistry(),
		admins:   make(map[model.HostID]*AdminComponent),
		registry: NewFactoryRegistry(),
		master:   hosts[0],
	}
	t.Cleanup(fw.fabric.Close)
	fw.registry.Register("counter", func(id string) Migratable { return newCounter(id) })
	for _, h := range hosts {
		if err := fw.fabric.AddHost(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			if err := fw.fabric.Connect(a, b, netsim.LinkState{Reliability: 1, BandwidthKB: 10_000}); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg.Deployer = fw.master
	cfg.Bus = "bus"
	cfg.Registry = fw.registry
	for i, h := range hosts {
		arch := NewArchitecture(h, nil)
		tr, err := NewNetsimTransport(fw.fabric, h)
		if err != nil {
			t.Fatal(err)
		}
		fc := fcs[h]
		fc.Seed += int64(i + 1) // distinct deterministic stream per host
		fc.Obs = fw.obsReg
		ft := NewFaultTransport(tr, fc)
		if _, err := arch.AddDistributionConnector("bus", ft); err != nil {
			t.Fatal(err)
		}
		admin, err := InstallAdmin(arch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fw.archs[h] = arch
		fw.faults[h] = ft
		fw.admins[h] = admin
	}
	dep, err := InstallDeployer(fw.archs[fw.master], cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw.deployer = dep
	t.Cleanup(func() {
		for _, a := range fw.admins {
			a.Close()
		}
	})
	return fw
}

func (fw *faultWorld) addCounter(t *testing.T, host model.HostID, id string, count int) {
	t.Helper()
	c := newCounter(id)
	c.Count = count
	if err := fw.archs[host].AddComponent(c); err != nil {
		t.Fatal(err)
	}
	if err := fw.archs[host].Weld(id, "bus"); err != nil {
		t.Fatal(err)
	}
}

// placement returns the hosts (possibly several, if a wave duplicated a
// component) currently holding each listed component.
func (fw *faultWorld) placement(comps ...string) map[string][]model.HostID {
	out := make(map[string][]model.HostID, len(comps))
	for _, id := range comps {
		for h, arch := range fw.archs {
			if arch.Component(id) != nil {
				out[id] = append(out[id], h)
			}
		}
	}
	return out
}

func (fw *faultWorld) epochsOutstanding() int {
	fw.deployer.mu.Lock()
	defer fw.deployer.mu.Unlock()
	return len(fw.deployer.epochs)
}

// wave20 is the acceptance scenario: four hosts, four migrating
// components, 20% silent frame loss plus 10% duplicate delivery on every
// transport, and a transient partition between the coordinator and one
// destination.
func wave20(t *testing.T, cfg AdminConfig) (*faultWorld, map[string]model.HostID, map[string]model.HostID) {
	t.Helper()
	fc := FaultConfig{Seed: 20040628, DropRate: 0.20, DupRate: 0.10}
	fcs := map[model.HostID]FaultConfig{"m": fc, "s1": fc, "s2": fc, "s3": fc}
	fw := newFaultWorld(t, cfg, fcs, "m", "s1", "s2", "s3")
	fw.addCounter(t, "s1", "c1", 11)
	fw.addCounter(t, "s2", "c2", 22)
	fw.addCounter(t, "s3", "c3", 33)
	fw.addCounter(t, "s1", "c4", 44)
	moves := map[string]model.HostID{"c1": "s2", "c2": "s3", "c3": "s1", "c4": "s3"}
	current := map[string]model.HostID{"c1": "s1", "c2": "s2", "c3": "s3", "c4": "s1"}
	return fw, moves, current
}

func (fw *faultWorld) partitionPair(a, b model.HostID, on bool) {
	fw.faults[a].Partition(b, on)
	fw.faults[b].Partition(a, on)
}

func TestWaveCompletesUnder20PctLossAndPartition(t *testing.T) {
	fw, moves, current := wave20(t, fastRetryCfg())
	// Transient partition between the coordinator and one destination,
	// healing mid-wave.
	fw.partitionPair("m", "s2", true)
	heal := time.AfterFunc(250*time.Millisecond, func() { fw.partitionPair("m", "s2", false) })
	defer heal.Stop()

	res, err := fw.deployer.Enact(moves, current, 15*time.Second)
	if err != nil {
		t.Fatalf("wave failed despite retries: %v", err)
	}
	if !res.Committed || res.Degraded {
		t.Fatalf("result = %+v, want committed and not degraded", res)
	}
	if res.Received != res.Moved || res.Moved != 4 {
		t.Fatalf("moved %d received %d, want 4/4", res.Moved, res.Received)
	}
	// Every component must live exactly once, at its destination.
	for comp, hosts := range fw.placement("c1", "c2", "c3", "c4") {
		if len(hosts) != 1 || hosts[0] != moves[comp] {
			t.Fatalf("%s at %v, want exactly [%s]", comp, hosts, moves[comp])
		}
	}
	// State survived the move.
	for comp, want := range map[string]int{"c1": 11, "c2": 22, "c3": 33, "c4": 44} {
		c := fw.archs[moves[comp]].Component(comp).(*counterComponent)
		if got := c.value(); got != want {
			t.Fatalf("%s count = %d after migration, want %d", comp, got, want)
		}
	}
	if fw.epochsOutstanding() != 0 {
		t.Fatal("deployer leaked epoch state")
	}
	dropped := 0
	snap := fw.obsReg.Snapshot()
	for h := range fw.faults {
		v, _ := snap.Value(obs.Name("prism_fault_dropped_total", "host", string(h)))
		dropped += int(v)
	}
	if dropped == 0 {
		t.Fatal("fault injector never fired; the test proved nothing")
	}
	t.Logf("wave committed 4/4 moves with %d control frames dropped", dropped)
}

func TestWaveFailsWithoutRetries(t *testing.T) {
	// The identical scenario with every retransmission layer disabled:
	// the partition alone guarantees the dispatch cannot complete.
	cfg := fastRetryCfg()
	cfg.Retry = RetryPolicy{Disabled: true}
	fw, moves, current := wave20(t, cfg)
	fw.partitionPair("m", "s2", true)

	res, err := fw.deployer.Enact(moves, current, 2*time.Second)
	if err == nil {
		t.Fatal("wave succeeded without retries under 20% loss and a partition")
	}
	if res.Committed {
		t.Fatalf("result = %+v, want uncommitted", res)
	}
	if fw.epochsOutstanding() != 0 {
		t.Fatal("failed dispatch leaked epoch state (the old doneCh leak)")
	}
}

func TestWaveRollbackReattachesSource(t *testing.T) {
	// s1's outbound frames all vanish: the fetch arrives (inbound is
	// clean) but the transfer never leaves, so the wave must time out and
	// the rollback must reattach c1 at s1 — prepared, not stranded.
	cfg := fastRetryCfg()
	fcs := map[model.HostID]FaultConfig{"s1": {DropRate: 1}}
	fw := newFaultWorld(t, cfg, fcs, "m", "s1", "s2")
	fw.addCounter(t, "s1", "c1", 5)

	res, err := fw.deployer.Enact(
		map[string]model.HostID{"c1": "s2"},
		map[string]model.HostID{"c1": "s1"},
		800*time.Millisecond,
	)
	if err == nil {
		t.Fatal("wave succeeded though every transfer was dropped")
	}
	if res.Committed {
		t.Fatalf("result = %+v, want rolled back", res)
	}
	// The abort reaches s1 (inbound works) and reattaches the prepared
	// component with its state intact.
	waitFor(t, func() bool { return fw.archs["s1"].Component("c1") != nil })
	c := fw.archs["s1"].Component("c1").(*counterComponent)
	if got := c.value(); got != 5 {
		t.Fatalf("rolled-back component count = %d, want 5", got)
	}
	if fw.archs["s2"].Component("c1") != nil {
		t.Fatal("destination kept an uncommitted arrival after rollback")
	}
	if fw.epochsOutstanding() != 0 {
		t.Fatal("deployer leaked epoch state after rollback")
	}
	// The reattached component is live: traffic routed to it is handled,
	// not buffered forever in a stale hold.
	fw.archs["s1"].Connector("bus").Route(Event{Name: "ping", Sender: "ext", Target: "c1"})
	waitFor(t, func() bool { return c.value() == 6 })
}

func TestEnactTimesOutCleanlyUnderPermanentPartition(t *testing.T) {
	// A destination that never becomes reachable: Enact must return an
	// error within its deadline (plus the ack budget), neither hanging
	// nor leaking epoch state — the deployer half of the lifecycle
	// satellite.
	cfg := fastRetryCfg()
	cfg.OutcomeAckTimeout = 300 * time.Millisecond
	fw := newFaultWorld(t, cfg, nil, "m", "s1", "s2")
	fw.addCounter(t, "s1", "c1", 1)
	fw.partitionPair("m", "s2", true)
	fw.partitionPair("s1", "s2", true)

	start := time.Now()
	res, err := fw.deployer.Enact(
		map[string]model.HostID{"c1": "s2"},
		map[string]model.HostID{"c1": "s1"},
		700*time.Millisecond,
	)
	if err == nil {
		t.Fatal("enact succeeded across a permanent partition")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("enact took %v, effectively hung", elapsed)
	}
	if len(res.Incomplete) != 1 || res.Incomplete[0] != "s2" {
		t.Fatalf("incomplete = %v, want [s2]", res.Incomplete)
	}
	if fw.epochsOutstanding() != 0 {
		t.Fatal("deployer leaked epoch state")
	}
	// The source keeps (or regains) its component.
	waitFor(t, func() bool { return fw.archs["s1"].Component("c1") != nil })
}

func TestWaveDeduplicatesDuplicatedFrames(t *testing.T) {
	// Heavy duplication, no loss: every control frame is delivered twice,
	// and the epoch/component dedup must keep the wave exactly-once.
	fc := FaultConfig{Seed: 3, DupRate: 1}
	fcs := map[model.HostID]FaultConfig{"m": fc, "s1": fc, "s2": fc}
	fw := newFaultWorld(t, fastRetryCfg(), fcs, "m", "s1", "s2")
	fw.addCounter(t, "s1", "c1", 9)

	res, err := fw.deployer.Enact(
		map[string]model.HostID{"c1": "s2"},
		map[string]model.HostID{"c1": "s1"},
		5*time.Second,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 1 || res.Moved != 1 {
		t.Fatalf("moved %d received %d, want 1/1", res.Moved, res.Received)
	}
	if hosts := fw.placement("c1")["c1"]; len(hosts) != 1 || hosts[0] != "s2" {
		t.Fatalf("c1 at %v, want exactly [s2]", hosts)
	}
}
