package prism

import (
	"sync"
)

// Scaffold schedules and dispatches events using a pool of worker
// goroutines in a decoupled manner (Prism-MW's IScaffold). A scaffold
// that has not been started dispatches synchronously on the caller's
// goroutine, which keeps single-host unit tests deterministic.
type Scaffold struct {
	mu      sync.Mutex
	queue   chan func()
	stop    chan struct{}
	workers sync.WaitGroup
	started bool
	pending sync.WaitGroup
}

// NewScaffold returns an unstarted (synchronous) scaffold.
func NewScaffold() *Scaffold {
	return &Scaffold{}
}

// Start launches the worker pool. Starting an already-started scaffold
// is a no-op.
func (s *Scaffold) Start(workers int) {
	if workers <= 0 {
		workers = 4
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.queue = make(chan func(), 1024)
	s.stop = make(chan struct{})
	s.started = true
	for i := 0; i < workers; i++ {
		s.workers.Add(1)
		go s.work()
	}
}

func (s *Scaffold) work() {
	defer s.workers.Done()
	for {
		select {
		case task := <-s.queue:
			task()
			s.pending.Done()
		case <-s.stop:
			// Drain the queue before exiting so Stop implies delivery.
			for {
				select {
				case task := <-s.queue:
					task()
					s.pending.Done()
				default:
					return
				}
			}
		}
	}
}

// Dispatch runs the task on a worker, or synchronously when the scaffold
// is not started.
func (s *Scaffold) Dispatch(task func()) {
	s.mu.Lock()
	started := s.started
	queue := s.queue
	s.mu.Unlock()
	if !started {
		task()
		return
	}
	s.pending.Add(1)
	select {
	case queue <- task:
	case <-s.stop:
		s.pending.Done()
	}
}

// Drain blocks until every dispatched task has finished. It must not be
// called from a worker (a task waiting on Drain would deadlock).
func (s *Scaffold) Drain() {
	s.pending.Wait()
}

// Stop shuts down the worker pool after draining queued tasks. The
// scaffold reverts to synchronous dispatch.
func (s *Scaffold) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop := s.stop
	queue := s.queue
	s.mu.Unlock()
	close(stop)
	s.workers.Wait()
	// Run anything that slipped into the queue while the workers were
	// exiting, so no dispatched task (or its pending count) is lost.
	for {
		select {
		case task := <-queue:
			task()
			s.pending.Done()
		default:
			return
		}
	}
}
