package prism

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"dif/internal/model"
)

// tcpFrame is the wire format of the TCP transport: a length-delimited
// gob stream of these frames per connection.
type tcpFrame struct {
	From model.HostID
	Data []byte
}

// TCPTransport carries frames between processes over real sockets with
// gob encoding — the deployment story for the framework's distributed
// instantiations (cmd/deployer and cmd/agent). Connections are dialed
// lazily and cached; inbound connections are accepted continuously until
// Close.
type TCPTransport struct {
	host model.HostID
	ln   net.Listener

	mu    sync.Mutex
	peers map[model.HostID]string // peer → address
	conns map[model.HostID]*tcpConn
	// socks tracks every live socket — registered or not — so Close can
	// unblock readLoops parked on connections that never sent a frame.
	socks  map[net.Conn]struct{}
	recv   func(from model.HostID, data []byte)
	closed bool
	wg     sync.WaitGroup
}

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
	// dialed distinguishes our outbound dials from accepted inbound
	// connections when resolving simultaneous-dial duels.
	dialed bool
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport listens on addr (e.g. "127.0.0.1:0") for the given
// host. Use Addr to discover the bound address.
func NewTCPTransport(host model.HostID, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	t := &TCPTransport{
		host:  host,
		ln:    ln,
		peers: make(map[model.HostID]string),
		conns: make(map[model.HostID]*tcpConn),
		socks: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Host implements Transport.
func (t *TCPTransport) Host() model.HostID { return t.host }

// AddPeer registers a remote host's address for dialing.
func (t *TCPTransport) AddPeer(host model.HostID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[host] = addr
}

// Peers implements Transport: the union of configured dial targets and
// hosts with a registered live connection (agents that dialed in).
func (t *TCPTransport) Peers() []model.HostID {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[model.HostID]bool, len(t.peers)+len(t.conns))
	out := make([]model.HostID, 0, len(t.peers)+len(t.conns))
	for h := range t.peers {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for h := range t.conns {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sortHostIDs(out)
	return out
}

// Hello dials a peer and introduces this host without sending a payload,
// registering the connection on both ends.
func (t *TCPTransport) Hello(to model.HostID) error {
	_, err := t.connTo(to)
	return err
}

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(recv func(from model.HostID, data []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// Send implements Transport. sizeKB is ignored — real sockets charge
// real bytes.
func (t *TCPTransport) Send(to model.HostID, data []byte, _ float64) error {
	conn, err := t.connTo(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := conn.enc.Encode(tcpFrame{From: t.host, Data: data}); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("tcp send to %s: %w", to, err)
	}
	return nil
}

func (t *TCPTransport) connTo(to model.HostID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcp transport closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcp transport: unknown peer %s", to)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp dial %s: %w", to, err)
	}
	c := &tcpConn{conn: raw, enc: gob.NewEncoder(raw), dialed: true}
	// Introduce ourselves, then read frames coming back on this
	// connection too (connections are bidirectional).
	c.mu.Lock()
	err = c.enc.Encode(tcpFrame{From: t.host, Data: nil})
	c.mu.Unlock()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("tcp hello to %s: %w", to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, errors.New("tcp transport closed")
	}
	var loser net.Conn
	if existing, ok := t.conns[to]; ok {
		if existing.dialed || t.host > to {
			// Another local dial already won, or the duel rule says the
			// peer (lower host) keeps its dial: yield to the registered
			// connection.
			t.mu.Unlock()
			raw.Close()
			return existing, nil
		}
		// Crossed simultaneous dials and we are the lower host: our dial
		// is canonical on both sides. Retire the inbound connection — its
		// readLoop exits on the closed socket and unregisters it.
		loser = existing.conn
	}
	t.conns[to] = c
	t.socks[raw] = struct{}{}
	t.wg.Add(1) // under mu so Close's Wait cannot start mid-Add
	t.mu.Unlock()
	if loser != nil {
		loser.Close()
	}
	go t.readLoop(raw)
	return c, nil
}

func (t *TCPTransport) dropConn(to model.HostID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.conn.Close()
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			// Raced past Close: drop the socket instead of leaking a
			// readLoop no one will ever wait for.
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.socks[conn] = struct{}{}
		t.wg.Add(1) // under mu so Close's Wait cannot start mid-Add
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one connection. The first frame from a
// given host also registers the connection for replies; on exit the
// connection is unregistered so later sends redial instead of writing to
// a dead encoder.
func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.socks, conn)
		for h, c := range t.conns {
			if c.conn == conn {
				delete(t.conns, h)
			}
		}
		t.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	var registered model.HostID
	for {
		var frame tcpFrame
		if err := dec.Decode(&frame); err != nil {
			return
		}
		if registered == "" && frame.From != "" {
			registered = frame.From
			t.mu.Lock()
			existing, ok := t.conns[frame.From]
			switch {
			case !ok:
				t.conns[frame.From] = &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
				t.mu.Unlock()
			case existing.conn != conn && existing.dialed && frame.From < t.host:
				// Crossed simultaneous dials: the lower host's dial is
				// canonical, and this inbound connection is it. Retire our
				// own dial; its readLoop unregisters it on the closed
				// socket. (A peer replying on our own dialed socket lands
				// here with existing.conn == conn — that is not a duel and
				// the registration must stand.)
				t.conns[frame.From] = &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
				t.mu.Unlock()
				existing.conn.Close()
			default:
				t.mu.Unlock()
			}
		}
		if frame.Data == nil {
			continue // hello frame
		}
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			recv(frame.From, frame.Data)
		}
	}
}

// Close implements Transport: stops accepting, closes every live socket
// (registered or not), and waits for reader goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	socks := make([]net.Conn, 0, len(t.socks))
	for c := range t.socks {
		socks = append(socks, c)
	}
	t.conns = make(map[model.HostID]*tcpConn)
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range socks {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

func sortHostIDs(ids []model.HostID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
