package prism

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dif/internal/model"
	"dif/internal/obs"
)

// tcpFrame is the wire format of the TCP transport: a length-delimited
// gob stream of these frames per connection.
type tcpFrame struct {
	From model.HostID
	Data []byte
}

// TCPTransport carries frames between processes over real sockets with
// gob encoding — the deployment story for the framework's distributed
// instantiations (cmd/deployer and cmd/agent). Connections are dialed
// lazily and cached; inbound connections are accepted continuously until
// Close.
type TCPTransport struct {
	host model.HostID
	ln   net.Listener

	mu    sync.Mutex
	peers map[model.HostID]string // peer → address
	conns map[model.HostID]*tcpConn
	// socks tracks every live socket — registered or not — so Close can
	// unblock readLoops parked on connections that never sent a frame.
	socks  map[net.Conn]struct{}
	recv   func(from model.HostID, data []byte)
	closed bool
	wg     sync.WaitGroup

	// Frame coalescing: when batchBytes > 0, each connection's gob
	// stream runs through a bufio.Writer of that size, so back-to-back
	// frames pack into one syscall; a per-connection idle timer flushes
	// after batchFlush so a lone frame is never stranded. 0 disables
	// coalescing (every frame is its own write, the pre-batching
	// behavior). Applies to connections established after SetBatching.
	batchBytes int
	batchFlush time.Duration

	flushesC *obs.Counter
	framesC  *obs.Counter
}

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
	// dialed distinguishes our outbound dials from accepted inbound
	// connections when resolving simultaneous-dial duels.
	dialed bool

	// bw buffers the gob stream when coalescing is on (nil otherwise);
	// timerSet tracks whether an idle flush is already scheduled;
	// flushAfter is the idle-flush deadline captured at creation.
	bw         *bufio.Writer
	timerSet   bool
	flushAfter time.Duration
	// closed (under mu) marks a connection released by Close, dropConn,
	// or its readLoop's exit. A one-shot idle-flush timer that fires
	// after that point must not touch the buffer or socket again.
	closed bool
}

// flushLocked drains buffered frames to the socket. Caller holds c.mu.
// A flush error closes the socket; the connection's readLoop notices
// and unregisters it, so the next Send redials.
func (c *tcpConn) flushLocked() error {
	if c.bw == nil || c.bw.Buffered() == 0 {
		return nil
	}
	if err := c.bw.Flush(); err != nil {
		c.conn.Close()
		return err
	}
	return nil
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport listens on addr (e.g. "127.0.0.1:0") for the given
// host. Use Addr to discover the bound address.
func NewTCPTransport(host model.HostID, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	t := &TCPTransport{
		host:  host,
		ln:    ln,
		peers: make(map[model.HostID]string),
		conns: make(map[model.HostID]*tcpConn),
		socks: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Host implements Transport.
func (t *TCPTransport) Host() model.HostID { return t.host }

// RetainsSendBuffers implements BufferRetainer: Send copies data into
// the connection's gob stream before returning, so callers may recycle
// their encode buffers immediately.
func (t *TCPTransport) RetainsSendBuffers() bool { return false }

// SetBatching configures frame coalescing for connections established
// from now on: frames pack into a bytes-sized write buffer flushed when
// full or after flush of send idleness. bytes 0 disables coalescing.
// Call it right after NewTCPTransport, before peers connect.
func (t *TCPTransport) SetBatching(bytes int, flush time.Duration) {
	if flush <= 0 {
		flush = DefaultBatchFlush
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batchBytes = bytes
	t.batchFlush = flush
}

// DefaultBatchFlush bounds how long a coalesced frame may sit in the
// write buffer before the idle timer pushes it out.
const DefaultBatchFlush = 2 * time.Millisecond

// Instrument registers the transport's coalescing metrics
// (prism_batch_flushes_total, prism_batch_frames_total) in reg.
func (t *TCPTransport) Instrument(reg *obs.Registry) {
	h := string(t.host)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushesC = reg.Counter(obs.Name("prism_batch_flushes_total", "host", h))
	t.framesC = reg.Counter(obs.Name("prism_batch_frames_total", "host", h))
}

// batching snapshots the coalescing configuration.
func (t *TCPTransport) batching() (int, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.batchBytes, t.batchFlush
}

// newConn wraps a socket in a tcpConn, inserting the coalescing buffer
// when batchBytes > 0.
func newConn(raw net.Conn, dialed bool, batchBytes int, batchFlush time.Duration) *tcpConn {
	c := &tcpConn{conn: raw, dialed: dialed, flushAfter: batchFlush}
	if batchBytes > 0 {
		c.bw = bufio.NewWriterSize(raw, batchBytes)
		c.enc = gob.NewEncoder(c.bw)
	} else {
		c.enc = gob.NewEncoder(raw)
	}
	return c
}

// sendFrame encodes one frame on the connection, honoring coalescing:
// with batching off the encoder writes straight to the socket; with it
// on, the frame lands in the write buffer and an idle flush is armed so
// it cannot sit longer than batchFlush.
func (t *TCPTransport) sendFrame(c *tcpConn, frame tcpFrame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("connection closed")
	}
	if err := c.enc.Encode(frame); err != nil {
		return err
	}
	if c.bw == nil {
		return nil
	}
	t.framesC.Inc()
	if c.bw.Buffered() == 0 {
		// The buffer filled mid-encode and drained to the socket; nothing
		// is stranded, no timer needed.
		return nil
	}
	if !c.timerSet {
		c.timerSet = true
		time.AfterFunc(c.flushAfter, func() {
			c.mu.Lock()
			c.timerSet = false
			if c.closed {
				// Close/dropConn already flushed (or abandoned) this
				// connection and may have released the socket; a late
				// flush here would race with its reuse elsewhere.
				c.mu.Unlock()
				return
			}
			err := c.flushLocked()
			c.mu.Unlock()
			if err == nil {
				t.flushesC.Inc()
			}
		})
	}
	return nil
}

// AddPeer registers a remote host's address for dialing.
func (t *TCPTransport) AddPeer(host model.HostID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[host] = addr
}

// Peers implements Transport: the union of configured dial targets and
// hosts with a registered live connection (agents that dialed in).
func (t *TCPTransport) Peers() []model.HostID {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[model.HostID]bool, len(t.peers)+len(t.conns))
	out := make([]model.HostID, 0, len(t.peers)+len(t.conns))
	for h := range t.peers {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for h := range t.conns {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sortHostIDs(out)
	return out
}

// Hello dials a peer and introduces this host without sending a payload,
// registering the connection on both ends.
func (t *TCPTransport) Hello(to model.HostID) error {
	_, err := t.connTo(to)
	return err
}

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(recv func(from model.HostID, data []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// Send implements Transport. sizeKB is ignored — real sockets charge
// real bytes.
func (t *TCPTransport) Send(to model.HostID, data []byte, _ float64) error {
	conn, err := t.connTo(to)
	if err != nil {
		return err
	}
	if err := t.sendFrame(conn, tcpFrame{From: t.host, Data: data}); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("tcp send to %s: %w", to, err)
	}
	return nil
}

func (t *TCPTransport) connTo(to model.HostID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcp transport closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcp transport: unknown peer %s", to)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp dial %s: %w", to, err)
	}
	bytes, flush := t.batching()
	c := newConn(raw, true, bytes, flush)
	// Introduce ourselves, then read frames coming back on this
	// connection too (connections are bidirectional). The hello flushes
	// immediately — the peer must learn who we are before any idle
	// timer would fire.
	c.mu.Lock()
	err = c.enc.Encode(tcpFrame{From: t.host, Data: nil})
	if err == nil {
		err = c.flushLocked()
	}
	c.mu.Unlock()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("tcp hello to %s: %w", to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, errors.New("tcp transport closed")
	}
	var loser net.Conn
	if existing, ok := t.conns[to]; ok {
		if existing.dialed || t.host > to {
			// Another local dial already won, or the duel rule says the
			// peer (lower host) keeps its dial: yield to the registered
			// connection.
			t.mu.Unlock()
			raw.Close()
			return existing, nil
		}
		// Crossed simultaneous dials and we are the lower host: our dial
		// is canonical on both sides. Retire the inbound connection — its
		// readLoop exits on the closed socket and unregisters it.
		loser = existing.conn
	}
	t.conns[to] = c
	t.socks[raw] = struct{}{}
	t.wg.Add(1) // under mu so Close's Wait cannot start mid-Add
	t.mu.Unlock()
	if loser != nil {
		loser.Close()
	}
	go t.readLoop(raw)
	return c, nil
}

func (t *TCPTransport) dropConn(to model.HostID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.mu.Lock()
	c.closed = true // disarm any pending idle-flush timer
	c.mu.Unlock()
	c.conn.Close()
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			// Raced past Close: drop the socket instead of leaking a
			// readLoop no one will ever wait for.
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.socks[conn] = struct{}{}
		t.wg.Add(1) // under mu so Close's Wait cannot start mid-Add
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one connection. The first frame from a
// given host also registers the connection for replies; on exit the
// connection is unregistered so later sends redial instead of writing to
// a dead encoder.
func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.socks, conn)
		var dead []*tcpConn
		for h, c := range t.conns {
			if c.conn == conn {
				delete(t.conns, h)
				dead = append(dead, c)
			}
		}
		t.mu.Unlock()
		for _, c := range dead {
			c.mu.Lock()
			c.closed = true // disarm any pending idle-flush timer
			c.mu.Unlock()
		}
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	var registered model.HostID
	for {
		var frame tcpFrame
		if err := dec.Decode(&frame); err != nil {
			return
		}
		if registered == "" && frame.From != "" {
			registered = frame.From
			t.mu.Lock()
			existing, ok := t.conns[frame.From]
			switch {
			case !ok:
				t.conns[frame.From] = newConn(conn, false, t.batchBytes, t.batchFlush)
				t.mu.Unlock()
			case existing.conn != conn && existing.dialed && frame.From < t.host:
				// Crossed simultaneous dials: the lower host's dial is
				// canonical, and this inbound connection is it. Retire our
				// own dial; its readLoop unregisters it on the closed
				// socket. (A peer replying on our own dialed socket lands
				// here with existing.conn == conn — that is not a duel and
				// the registration must stand.)
				t.conns[frame.From] = newConn(conn, false, t.batchBytes, t.batchFlush)
				t.mu.Unlock()
				existing.conn.Close()
			default:
				t.mu.Unlock()
			}
		}
		if frame.Data == nil {
			continue // hello frame
		}
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			recv(frame.From, frame.Data)
		}
	}
}

// Close implements Transport: stops accepting, closes every live socket
// (registered or not), and waits for reader goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	socks := make([]net.Conn, 0, len(t.socks))
	for c := range t.socks {
		socks = append(socks, c)
	}
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = make(map[model.HostID]*tcpConn)
	t.mu.Unlock()

	// Push out coalesced frames still sitting in write buffers before
	// the sockets close under them, and mark each connection closed so a
	// one-shot idle-flush timer armed earlier cannot fire into the
	// released socket afterwards.
	for _, c := range conns {
		c.mu.Lock()
		c.flushLocked()
		c.closed = true
		c.mu.Unlock()
	}

	t.ln.Close()
	for _, c := range socks {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

func sortHostIDs(ids []model.HostID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
