package prism

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"dif/internal/model"
)

// frameBytes gob-encodes a tcpFrame as it would appear on the wire.
func frameBytes(t testing.TB, f tcpFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeEvent throws corrupt and truncated byte strings at the event
// decoder: it must return an error or an event, never panic.
func FuzzDecodeEvent(f *testing.F) {
	valid, err := EncodeEvent(Event{
		Name: "app.probe", Target: "c1", SizeKB: 0.2, Payload: "e1",
		Seq: 7, SeqOrigin: "h1", SeqInc: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeEvent(data) // must not panic
	})
}

// FuzzTCPReadLoop feeds arbitrary bytes into a live TCP transport's
// frame reader: corrupt, truncated, or adversarial gob streams must
// neither panic nor wedge the read loop — Close always completes and the
// transport keeps serving well-formed frames from other connections.
func FuzzTCPReadLoop(f *testing.F) {
	hello := frameBytes(f, tcpFrame{From: "peer"})
	data := frameBytes(f, tcpFrame{From: "peer", Data: []byte("payload")})
	f.Add(hello)
	f.Add(data)
	f.Add(append(append([]byte(nil), hello...), data...))
	f.Add(data[:len(data)-3])
	f.Add([]byte{})
	f.Add([]byte{0x04, 0xff, 0x81, 0x03})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	// Binary-codec frames ride inside the same gob tcpFrame stream; mix
	// them with gob event frames, truncate them, and splice raw binary
	// bytes (no tcpFrame envelope) straight onto the socket.
	binEvent, err := EncodeEvent(Event{
		Name: "app.req", Target: "c1", Seq: 3, SeqOrigin: "peer", SeqInc: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	gobEvent, err := EncodeEvent(Event{Name: "app.req", Target: "c1", Payload: "gob"})
	if err != nil {
		f.Fatal(err)
	}
	binFrame := frameBytes(f, tcpFrame{From: "peer", Data: binEvent})
	gobFrame := frameBytes(f, tcpFrame{From: "peer", Data: gobEvent})
	f.Add(binFrame)
	f.Add(append(append([]byte(nil), binFrame...), gobFrame...))
	f.Add(append(append([]byte(nil), gobFrame...), binFrame...))
	f.Add(binFrame[:len(binFrame)-2])
	f.Add(append([]byte(nil), binEvent...)) // binary event without envelope
	f.Add(frameBytes(f, tcpFrame{From: "peer", Data: binEvent[:len(binEvent)/2]}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := NewTCPTransport("fz", "127.0.0.1:0")
		if err != nil {
			t.Skip("no loopback listener available")
		}
		got := make(chan []byte, 16)
		tr.SetReceiver(func(from model.HostID, data []byte) {
			select {
			case got <- data:
			default:
			}
		})

		conn, err := net.Dial("tcp", tr.Addr())
		if err != nil {
			tr.Close()
			t.Skip("dial failed")
		}
		conn.Write(raw)
		conn.Close()

		// The transport must still serve a well-formed connection.
		good, err := net.Dial("tcp", tr.Addr())
		if err == nil {
			good.Write(frameBytes(t, tcpFrame{From: "good", Data: []byte("ok")}))
			deadline := time.After(2 * time.Second)
		wait:
			for {
				select {
				case d := <-got:
					if string(d) == "ok" {
						break wait
					}
				case <-deadline:
					t.Error("well-formed frame never delivered after fuzz input")
					break wait
				}
			}
			good.Close()
		}

		done := make(chan struct{})
		go func() {
			tr.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("transport Close wedged after fuzz input")
		}
	})
}
