package prism

import (
	"net"
	"sync"
	"testing"
	"time"

	"dif/internal/model"
)

func newTCPPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport("hostA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewTCPTransport("hostB", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.AddPeer("hostB", b.Addr())
	b.AddPeer("hostA", a.Addr())
	return a, b
}

type frameSink struct {
	mu     sync.Mutex
	frames []string
	froms  []model.HostID
}

func (s *frameSink) recv(from model.HostID, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, string(data))
	s.froms = append(s.froms, from)
}

func (s *frameSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func (s *frameSink) all() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.frames...)
}

func TestTCPTransportRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	var sink frameSink
	b.SetReceiver(sink.recv)
	if err := a.Send("hostB", []byte("hello"), 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 1 })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.frames[0] != "hello" || sink.froms[0] != "hostA" {
		t.Fatalf("frame = %q from %s", sink.frames[0], sink.froms[0])
	}
}

func TestTCPTransportBidirectionalOnOneConnection(t *testing.T) {
	a, b := newTCPPair(t)
	var sinkA, sinkB frameSink
	a.SetReceiver(sinkA.recv)
	b.SetReceiver(sinkB.recv)
	if err := a.Send("hostB", []byte("ping"), 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sinkB.count() == 1 })
	// The reply must reuse the inbound connection registered by hello.
	if err := b.Send("hostA", []byte("pong"), 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sinkA.count() == 1 })
}

func TestTCPTransportUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send("ghost", []byte("x"), 1); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPTransportManyFrames(t *testing.T) {
	a, b := newTCPPair(t)
	var sink frameSink
	b.SetReceiver(sink.recv)
	for i := 0; i < 200; i++ {
		if err := a.Send("hostB", []byte{byte(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return sink.count() == 200 })
}

func TestTCPTransportClose(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send("hostB", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := a.Send("hostB", []byte("y"), 1); err == nil {
		t.Fatal("send after close succeeded")
	}
	_ = b
}

func TestTCPTransportPeersSorted(t *testing.T) {
	a, _ := newTCPPair(t)
	a.AddPeer("hostZ", "127.0.0.1:1")
	a.AddPeer("hostC", "127.0.0.1:2")
	peers := a.Peers()
	if len(peers) != 3 || peers[0] != "hostB" || peers[2] != "hostZ" {
		t.Fatalf("peers = %v", peers)
	}
}

func TestDistributionConnectorOverTCP(t *testing.T) {
	// Full prism stack over real sockets: two architectures exchange an
	// application event.
	ta, tb := newTCPPair(t)
	archA := NewArchitecture("hostA", nil)
	archB := NewArchitecture("hostB", nil)
	if _, err := archA.AddDistributionConnector("bus", ta); err != nil {
		t.Fatal(err)
	}
	if _, err := archB.AddDistributionConnector("bus", tb); err != nil {
		t.Fatal(err)
	}
	sender := newEcho("sender")
	receiver := newEcho("receiver")
	if err := archA.AddComponent(sender); err != nil {
		t.Fatal(err)
	}
	if err := archA.Weld("sender", "bus"); err != nil {
		t.Fatal(err)
	}
	if err := archB.AddComponent(receiver); err != nil {
		t.Fatal(err)
	}
	if err := archB.Weld("receiver", "bus"); err != nil {
		t.Fatal(err)
	}
	sender.Emit(Event{Name: "over-tcp", Target: "receiver", Payload: "data"})
	waitFor(t, func() bool { return receiver.count.Load() == 1 })
	ev := receiver.events()[0]
	if ev.SrcHost != "hostA" || ev.Payload != "data" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestMigrationOverTCP(t *testing.T) {
	// End-to-end component migration across real processes' worth of
	// plumbing (same process, real sockets).
	ta, tb := newTCPPair(t)
	archM := NewArchitecture("hostA", nil) // master
	archS := NewArchitecture("hostB", nil)
	if _, err := archM.AddDistributionConnector("bus", ta); err != nil {
		t.Fatal(err)
	}
	if _, err := archS.AddDistributionConnector("bus", tb); err != nil {
		t.Fatal(err)
	}
	registry := NewFactoryRegistry()
	registry.Register("counter", func(id string) Migratable { return newCounter(id) })
	cfg := AdminConfig{Deployer: "hostA", Bus: "bus", Registry: registry}
	if _, err := InstallAdmin(archM, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := InstallAdmin(archS, cfg); err != nil {
		t.Fatal(err)
	}
	dep, err := InstallDeployer(archM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := newCounter("c1")
	c.Count = 99
	if err := archS.AddComponent(c); err != nil {
		t.Fatal(err)
	}
	if err := archS.Weld("c1", "bus"); err != nil {
		t.Fatal(err)
	}
	res, err := dep.Enact(
		map[string]model.HostID{"c1": "hostA"},
		map[string]model.HostID{"c1": "hostB"},
		5*time.Second,
	)
	if err != nil {
		t.Fatalf("enact over tcp: %v (%+v)", err, res)
	}
	waitFor(t, func() bool { return archM.Component("c1") != nil })
	if got := archM.Component("c1").(*counterComponent).value(); got != 99 {
		t.Fatalf("state over tcp = %d, want 99", got)
	}
}

// --- Lifecycle tests (run these under -race) ---

func TestTCPTransportConcurrentSendHelloClose(t *testing.T) {
	a, b := newTCPPair(t)
	sink := &frameSink{}
	b.SetReceiver(sink.recv)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Errors are expected once Close lands mid-loop; the point
				// is that nothing races, panics, or deadlocks.
				_ = a.Send("hostB", []byte("x"), 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = b.Hello("hostA")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		_ = a.Close()
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Send/Hello/Close deadlocked")
	}
	if err := a.Send("hostB", []byte("x"), 1); err == nil {
		t.Fatal("send after Close succeeded")
	}
}

func TestTCPTransportCrossedDials(t *testing.T) {
	a, b := newTCPPair(t)
	sinkA, sinkB := &frameSink{}, &frameSink{}
	a.SetReceiver(sinkA.recv)
	b.SetReceiver(sinkB.recv)

	// Dial each other simultaneously to provoke the duel.
	var wg sync.WaitGroup
	for _, tr := range []*TCPTransport{a, b} {
		wg.Add(1)
		go func(tr *TCPTransport) {
			defer wg.Done()
			peer := model.HostID("hostB")
			if tr.Host() == "hostB" {
				peer = "hostA"
			}
			_ = tr.Hello(peer)
		}(tr)
	}
	wg.Wait()

	// Whatever the duel resolved to, traffic must flow both ways on live
	// encoders — a registered-but-dead conn would error or lose frames.
	for i := 0; i < 10; i++ {
		if err := a.Send("hostB", []byte("ab"), 1); err != nil {
			t.Fatalf("a→b after crossed dials: %v", err)
		}
		if err := b.Send("hostA", []byte("ba"), 1); err != nil {
			t.Fatalf("b→a after crossed dials: %v", err)
		}
	}
	waitFor(t, func() bool { return len(sinkB.all()) == 10 && len(sinkA.all()) == 10 })

	// The duel must converge to a single registered conn per peer and no
	// leaked unregistered sockets beyond it.
	waitFor(t, func() bool {
		for _, tr := range []*TCPTransport{a, b} {
			tr.mu.Lock()
			conns, socks := len(tr.conns), len(tr.socks)
			tr.mu.Unlock()
			if conns != 1 || socks > 2 {
				return false
			}
		}
		return true
	})
}

func TestTCPTransportReplyDoesNotKillDialedConn(t *testing.T) {
	// The agent→deployer shape: the higher-named host dials the lower one,
	// and the lower host replies over the inbound connection. The reply's
	// first frame arrives on the dialer's own socket with From < host —
	// which must NOT be mistaken for a crossed-dial duel (that bug closed
	// the live socket on every reply, severing the deployer's only path
	// back to its agents).
	a, b := newTCPPair(t) // hostA < hostB
	sinkA, sinkB := &frameSink{}, &frameSink{}
	a.SetReceiver(sinkA.recv)
	b.SetReceiver(sinkB.recv)

	if err := b.Send("hostA", []byte("join"), 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sinkA.count() == 1 })
	b.mu.Lock()
	before := b.conns["hostA"]
	b.mu.Unlock()
	if before == nil {
		t.Fatal("dialed conn not registered")
	}

	if err := a.Send("hostB", []byte("reply"), 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sinkB.count() == 1 })
	time.Sleep(50 * time.Millisecond) // let any misfired close propagate

	b.mu.Lock()
	after := b.conns["hostA"]
	b.mu.Unlock()
	if after == nil || after.conn != before.conn {
		t.Fatal("reply on the dialed socket churned the registered conn")
	}
	// a's inbound registration must also have survived, so a can keep
	// initiating traffic without b redialing.
	for i := 0; i < 5; i++ {
		if err := a.Send("hostB", []byte("more"), 1); err != nil {
			t.Fatalf("a→b after reply: %v", err)
		}
	}
	waitFor(t, func() bool { return sinkB.count() == 6 })
}

func TestTCPTransportReceiverRegisteredAfterFrames(t *testing.T) {
	a, b := newTCPPair(t)
	// Frames sent before the receiver exists are dropped by design; the
	// transport must stay healthy and deliver everything sent afterward.
	if err := a.Send("hostB", []byte("early"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	sink := &frameSink{}
	b.SetReceiver(sink.recv)
	for i := 0; i < 5; i++ {
		if err := a.Send("hostB", []byte("late"), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(sink.all()) == 5 })
	for _, f := range sink.all() {
		if f != "late" {
			t.Fatalf("received pre-receiver frame %q", f)
		}
	}
}

func TestTCPTransportCloseIdleFlushRace(t *testing.T) {
	// With coalescing on, every Send that strands bytes in the write
	// buffer arms a one-shot idle-flush timer. Close flushes and releases
	// the sockets itself; a timer firing after that point must observe
	// the closed flag and back off instead of flushing into a dead
	// socket. Run under -race: the bug is a flush racing with Close's own
	// flush/teardown of the same bufio.Writer.
	for round := 0; round < 20; round++ {
		a, b := newTCPPair(t)
		a.SetBatching(64<<10, 50*time.Microsecond)
		b.SetBatching(64<<10, 50*time.Microsecond)
		sink := &frameSink{}
		b.SetReceiver(sink.recv)

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					// Errors are fine once Close lands; the invariant under
					// test is no data race and no deadlock.
					_ = a.Send("hostB", []byte("burst"), 1)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Close()
		}()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Send/Close with idle-flush timers deadlocked")
		}
		b.Close()
	}
}

func TestTCPTransportCloseWithIdleInboundConn(t *testing.T) {
	a, err := NewTCPTransport("hostA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A raw client that connects but never sends a frame: its readLoop
	// blocks in Decode with nothing registered. Close must still reap it.
	raw, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	time.Sleep(20 * time.Millisecond) // let accept() hand it to a readLoop

	done := make(chan struct{})
	go func() { _ = a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on an idle inbound connection")
	}
}
