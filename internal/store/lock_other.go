//go:build !unix

package store

import "os"

// acquireLock on platforms without flock falls back to an exclusive
// create; a leftover lock file from a crashed owner must be removed by
// the operator.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, ErrLocked
		}
		return nil, err
	}
	return f, nil
}

func releaseLock(f *os.File) {
	path := f.Name()
	f.Close()
	_ = os.Remove(path)
}
