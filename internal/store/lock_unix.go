//go:build unix

package store

import (
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on path. The lock
// dies with the process (including kill -9), so a crashed owner never
// wedges the directory, while a live second opener is rejected.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, ErrLocked
		}
		return nil, err
	}
	return f, nil
}

func releaseLock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
