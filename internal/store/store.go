// Package store is a small write-ahead checkpoint log: the durable
// substrate under the deployer's crash-safe wave state. The format is an
// append-only sequence of versioned, length-prefixed, CRC-guarded
// records; compaction rewrites the whole log through an atomic rename;
// an flock-style lock file rejects a second opener of the same
// directory. Decoding is strict with exactly one forgiving case — a
// record cut short by the end of the file is a torn tail write (the
// crash the log exists to survive) and is dropped and truncated away; a
// complete record whose CRC does not match is corruption and a hard
// error.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Record is one durable entry: an application-defined kind byte plus an
// opaque payload.
type Record struct {
	Kind byte
	Data []byte
}

const (
	logName  = "wal.log"
	lockName = "wal.lock"

	// recVersion stamps every record; strict decode rejects others.
	recVersion = 1

	// header = version(1) + kind(1) + length(4); trailer = crc32(4).
	headerLen  = 6
	trailerLen = 4

	// maxRecordLen bounds a single payload; a longer length field in a
	// complete record is corruption, not a checkpoint.
	maxRecordLen = 16 << 20
)

// ErrLocked reports that another live process holds the state directory.
var ErrLocked = errors.New("store: state directory locked by another process")

// ErrClosed reports an operation on a closed (or crash-marked) log.
var ErrClosed = errors.New("store: log closed")

// CorruptError reports a structurally complete but invalid record; the
// log refuses to open rather than silently skip state.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized and fsynced before returning.
type Log struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	lock     *os.File
	closed   bool
	nosync   bool
	appended int // records appended since open/compact
	replayed int // records recovered at open
}

// Options tunes Open.
type Options struct {
	// NoSync skips the per-append fsync. Torture tests flip it to model a
	// kernel that never flushed the tail; production leaves it false.
	NoSync bool
}

// Open acquires the directory lock, replays the existing log (creating
// an empty one if absent), and returns the log handle plus every record
// recovered. A torn record at the tail is dropped and the file truncated
// back to the last complete record; corruption earlier in the log is a
// hard error.
func Open(dir string, opts Options) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lock, err := acquireLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, nil, err
	}
	recs, keep, err := replay(f)
	if err != nil {
		f.Close()
		releaseLock(lock)
		return nil, nil, err
	}
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > keep {
		// Torn tail: drop the partial record so the next append starts on
		// a clean boundary.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			releaseLock(lock)
			return nil, nil, err
		}
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		releaseLock(lock)
		return nil, nil, err
	}
	return &Log{dir: dir, f: f, lock: lock, nosync: opts.NoSync, replayed: len(recs)}, recs, nil
}

// replay decodes records sequentially, returning them plus the byte
// offset of the first incomplete (torn) record — the keep-length.
func replay(f *os.File) ([]Record, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var off int64
	hdr := make([]byte, headerLen)
	for off < size {
		if size-off < headerLen {
			return recs, off, nil // torn header at tail
		}
		if _, err := io.ReadFull(f, hdr); err != nil {
			return nil, 0, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[2:6]))
		if size-off-headerLen < n+trailerLen {
			return recs, off, nil // torn payload/trailer at tail
		}
		// The record is structurally complete from here on: any defect is
		// corruption, not a torn write.
		if hdr[0] != recVersion {
			return nil, 0, &CorruptError{Offset: off, Reason: fmt.Sprintf("unknown version %d", hdr[0])}
		}
		if n > maxRecordLen {
			return nil, 0, &CorruptError{Offset: off, Reason: fmt.Sprintf("record length %d exceeds limit", n)}
		}
		body := make([]byte, n+trailerLen)
		if _, err := io.ReadFull(f, body); err != nil {
			return nil, 0, err
		}
		sum := crc32.NewIEEE()
		sum.Write(hdr)
		sum.Write(body[:n])
		if got, want := binary.BigEndian.Uint32(body[n:]), sum.Sum32(); got != want {
			return nil, 0, &CorruptError{Offset: off, Reason: "crc mismatch"}
		}
		recs = append(recs, Record{Kind: hdr[1], Data: body[:n:n]})
		off += headerLen + n + trailerLen
	}
	return recs, off, nil
}

func encodeRecord(kind byte, data []byte) []byte {
	buf := make([]byte, headerLen+len(data)+trailerLen)
	buf[0] = recVersion
	buf[1] = kind
	binary.BigEndian.PutUint32(buf[2:6], uint32(len(data)))
	copy(buf[headerLen:], data)
	sum := crc32.ChecksumIEEE(buf[:headerLen+len(data)])
	binary.BigEndian.PutUint32(buf[headerLen+len(data):], sum)
	return buf
}

// Append durably adds one record: written, then fsynced, before
// returning nil. A failed append leaves at worst a torn tail, which the
// next Open drops.
func (l *Log) Append(kind byte, data []byte) error {
	if len(data) > maxRecordLen {
		return fmt.Errorf("store: record length %d exceeds limit", len(data))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.Write(encodeRecord(kind, data)); err != nil {
		return err
	}
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.appended++
	return nil
}

// AppendBatch durably adds a run of records with a single write and a
// single fsync — the replication-ingest fast path: a standby applying a
// replicated batch pays one disk round trip per batch, not per record.
// Atomicity matches Append's: a crash mid-batch leaves at worst a torn
// tail, and the next Open truncates back to the last complete record.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		if len(r.Data) > maxRecordLen {
			return fmt.Errorf("store: record length %d exceeds limit", len(r.Data))
		}
		buf = append(buf, encodeRecord(r.Kind, r.Data)...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.appended += len(recs)
	return nil
}

// Compact atomically replaces the log's contents with exactly recs: the
// replacement is written to a temporary file, fsynced, and renamed over
// the log, so a crash at any point leaves either the old log or the new
// one — never a mix.
func (l *Log) Compact(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(l.dir, logName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := tmp.Write(encodeRecord(r.Kind, r.Data)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, logName)); err != nil {
		os.Remove(tmpPath)
		return err
	}
	old := l.f
	f, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	l.f = f
	old.Close()
	syncDir(l.dir)
	l.appended = 0
	return nil
}

// Appended reports records appended since the last open or compaction —
// the caller's compaction heuristic.
func (l *Log) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Replayed reports how many records the opening replay recovered.
func (l *Log) Replayed() int { return l.replayed }

// MarkDead makes every subsequent Append and Compact fail with ErrClosed
// without releasing the lock or file — the torture-test and chaos-drill
// stand-in for kill -9.
func (l *Log) MarkDead() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

// Close releases the log and its process lock.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	if l.lock != nil {
		releaseLock(l.lock)
		l.lock = nil
	}
	return err
}

// syncDir best-effort fsyncs a directory so a rename is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
