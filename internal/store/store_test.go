package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openOrDie(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openOrDie(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: 1, Data: []byte("epoch open")},
		{Kind: 2, Data: nil},
		{Kind: 3, Data: []byte{0, 1, 2, 255}},
	}
	for _, r := range want {
		if err := l.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, recs = openOrDie(t, dir)
	defer l.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != want[i].Kind || !bytes.Equal(r.Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestTornTailRecovered models kill -9 mid-append: the file ends in a
// partial record. Reopen must recover every complete record, drop the
// torn tail, and leave the log appendable on a clean boundary.
func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	full := encodeRecord(7, []byte("survives"))
	torn := encodeRecord(8, []byte("torn away"))
	for cut := 1; cut < len(torn); cut++ {
		path := filepath.Join(dir, logName)
		if err := os.WriteFile(path, append(append([]byte{}, full...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Kind != 7 || string(recs[0].Data) != "survives" {
			t.Fatalf("cut %d: replayed %+v", cut, recs)
		}
		// The torn bytes are gone and the next append lands cleanly.
		if err := l.Append(9, []byte("after crash")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		l, recs = openOrDie(t, dir)
		if len(recs) != 2 || recs[1].Kind != 9 {
			t.Fatalf("cut %d: post-recovery replay %+v", cut, recs)
		}
		l.Close()
		os.Remove(path)
	}
}

// TestCorruptMidLogIsHardError flips one payload byte in the first of
// two records: the log must refuse to open rather than skip state.
func TestCorruptMidLogIsHardError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	if err := l.Append(1, []byte("first record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("second record")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen] ^= 0xff // first payload byte of record one
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("open of corrupt log: err = %v, want CorruptError", err)
	}
	if ce.Offset != 0 {
		t.Fatalf("corrupt offset = %d, want 0", ce.Offset)
	}
}

func TestUnknownVersionIsHardError(t *testing.T) {
	dir := t.TempDir()
	rec := encodeRecord(1, []byte("x"))
	rec[0] = 99 // bogus version; CRC check is after the version check
	if err := os.WriteFile(filepath.Join(dir, logName), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CorruptError", err)
	}
}

// TestDoubleOpenRejected pins the process lock: while one handle is
// live, a second Open of the same directory fails with ErrLocked, and
// closing the first admits the second.
func TestDoubleOpenRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open err = %v, want ErrLocked", err)
	}
	l.Close()
	l2, _ := openOrDie(t, dir)
	l2.Close()
}

func TestCompactReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	for i := 0; i < 10; i++ {
		if err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{{Kind: 5, Data: []byte("snapshot")}}
	if err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if l.Appended() != 0 {
		t.Fatalf("Appended after compact = %d", l.Appended())
	}
	// The log stays appendable on the new file.
	if err := l.Append(6, []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, recs := openOrDie(t, dir)
	defer l.Close()
	if len(recs) != 2 || recs[0].Kind != 5 || recs[1].Kind != 6 {
		t.Fatalf("post-compact replay = %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, logName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("compaction temp file left behind")
	}
}

func TestMarkDeadFailsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	defer l.Close()
	if err := l.Append(1, []byte("live")); err != nil {
		t.Fatal(err)
	}
	l.MarkDead()
	if err := l.Append(2, []byte("dead")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after MarkDead err = %v, want ErrClosed", err)
	}
	if err := l.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after MarkDead err = %v, want ErrClosed", err)
	}
}

func TestEmptyPayloadAndLargeRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	big := bytes.Repeat([]byte{0xab}, 1<<16)
	if err := l.Append(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, big); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, recs := openOrDie(t, dir)
	defer l.Close()
	if len(recs) != 2 || len(recs[0].Data) != 0 || !bytes.Equal(recs[1].Data, big) {
		t.Fatalf("replay mismatch: %d records", len(recs))
	}
}

// TestAppendBatch checks the single-write batch path replays exactly
// like the equivalent run of single appends, shares its durability
// semantics (ErrClosed after MarkDead), and rejects oversized records
// before writing anything.
func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l, _ := openOrDie(t, dir)
	batch := []Record{
		{Kind: 1, Data: []byte("a")},
		{Kind: 2, Data: nil},
		{Kind: 3, Data: []byte("ccc")},
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(4, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if got := l.Appended(); got != 4 {
		t.Fatalf("Appended() = %d, want 4", got)
	}
	if err := l.AppendBatch([]Record{{Kind: 5, Data: make([]byte, maxRecordLen+1)}}); err == nil {
		t.Fatal("oversized batch record accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The batch bytes on disk match the per-record encoding exactly.
	single := t.TempDir()
	sl, _ := openOrDie(t, single)
	for _, r := range batch {
		if err := sl.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Append(4, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(single, logName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("batch encoding differs from single appends: %d vs %d bytes", len(b1), len(b2))
	}

	l, recs := openOrDie(t, dir)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	l.MarkDead()
	if err := l.AppendBatch(batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch on dead log: err = %v, want ErrClosed", err)
	}
	l.Close()
}
